"""Tests for the coverage analysis metrics (full-view, k-view, redundancy)."""

from __future__ import annotations

import math

import pytest

from repro.core.coverage_index import CoverageIndex
from repro.core.geometry import Point
from repro.core.metrics import analyze_collection
from repro.core.poi import PoIList

from helpers import make_photo, photo_at_aspect

THETA = math.radians(30.0)


def index_for(points):
    return CoverageIndex(PoIList.from_points(points), effective_angle=THETA)


class TestAnalyzeCollection:
    def test_empty_collection(self):
        index = index_for([Point(0.0, 0.0)])
        report = analyze_collection(index, [])
        assert report.num_photos == 0
        assert report.point_coverage == 0.0
        assert report.full_view_fraction == 0.0
        assert report.per_poi[0].covered is False

    def test_single_photo_report(self):
        index = index_for([Point(0.0, 0.0)])
        report = analyze_collection(index, [photo_at_aspect(Point(0.0, 0.0), 45.0)])
        poi = report.per_poi[0]
        assert poi.covered
        assert poi.covering_photos == 1
        assert poi.aspect_deg == pytest.approx(60.0)
        assert not poi.full_view
        assert poi.distinct_views == 1
        assert poi.overlap_deg == pytest.approx(0.0)

    def test_full_view_detected(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [photo_at_aspect(Point(0.0, 0.0), float(d)) for d in range(0, 360, 45)]
        report = analyze_collection(index, photos)
        assert report.per_poi[0].full_view
        assert report.full_view_fraction == 1.0

    def test_overlap_measured(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), 0.0),
            photo_at_aspect(Point(0.0, 0.0), 30.0),  # arcs overlap by 30 deg
        ]
        report = analyze_collection(index, photos)
        assert report.per_poi[0].overlap_deg == pytest.approx(30.0, abs=1e-6)
        assert report.mean_overlap_deg == pytest.approx(30.0, abs=1e-6)

    def test_distinct_views_greedy_count(self):
        index = index_for([Point(0.0, 0.0)])
        # Views at 0, 10, 180 deg with 30-deg separation -> 2 distinct.
        photos = [photo_at_aspect(Point(0.0, 0.0), d) for d in (0.0, 10.0, 180.0)]
        report = analyze_collection(index, photos)
        assert report.per_poi[0].distinct_views == 2

    def test_k_view_fraction(self):
        index = index_for([Point(0.0, 0.0), Point(500.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), 0.0),
            photo_at_aspect(Point(0.0, 0.0), 180.0),
            photo_at_aspect(Point(500.0, 0.0), 90.0),
        ]
        report = analyze_collection(index, photos)
        assert report.k_view_fraction(1) == 1.0
        assert report.k_view_fraction(2) == 0.5
        with pytest.raises(ValueError):
            report.k_view_fraction(0)

    def test_aggregates(self):
        index = index_for([Point(0.0, 0.0), Point(500.0, 0.0), Point(0.0, 500.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), 0.0),
            photo_at_aspect(Point(0.0, 0.0), 180.0),
            photo_at_aspect(Point(500.0, 0.0), 90.0),
        ]
        report = analyze_collection(index, photos)
        assert report.point_coverage == pytest.approx(2.0 / 3.0)
        assert report.mean_photos_per_covered_poi == pytest.approx(1.5)
        assert report.mean_aspect_deg == pytest.approx((120.0 + 60.0 + 0.0) / 3.0)

    def test_noncovering_photos_counted_but_harmless(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [make_photo(9000.0, 9000.0, 0.0)]
        report = analyze_collection(index, photos)
        assert report.num_photos == 1
        assert report.point_coverage == 0.0

    def test_paper_redundancy_argument(self):
        """Sec. V-E: N photos per PoI with little overlap cover ~ N * 2*theta."""
        index = index_for([Point(0.0, 0.0)])
        # 3 photos at well-separated aspects: no overlap at all.
        photos = [photo_at_aspect(Point(0.0, 0.0), d) for d in (0.0, 120.0, 240.0)]
        report = analyze_collection(index, photos)
        poi = report.per_poi[0]
        ideal = poi.covering_photos * math.degrees(2 * THETA)
        assert poi.aspect_deg == pytest.approx(ideal)
        assert poi.overlap_deg == pytest.approx(0.0)

    def test_mean_overlap_per_photo(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [photo_at_aspect(Point(0.0, 0.0), d) for d in (0.0, 30.0)]
        report = analyze_collection(index, photos)
        assert report.per_poi[0].mean_overlap_per_photo_deg == pytest.approx(15.0, abs=1e-6)
