"""Tests for the mobility models and contact extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.mobility import BrownianMotion, RandomWaypoint, extract_contacts
from repro.traces.mobility.base import MobilityModel


class TestRandomWaypoint:
    def model(self, **overrides):
        defaults = dict(num_nodes=5, width=1000.0, height=800.0, seed=0)
        defaults.update(overrides)
        return RandomWaypoint(**defaults)

    def test_reset_within_bounds(self):
        positions = self.model().reset()
        assert positions.shape == (5, 2)
        assert (positions[:, 0] >= 0).all() and (positions[:, 0] <= 1000.0).all()
        assert (positions[:, 1] >= 0).all() and (positions[:, 1] <= 800.0).all()

    def test_step_stays_within_bounds(self):
        model = self.model()
        model.reset()
        for _ in range(50):
            positions = model.step(60.0)
            assert (positions[:, 0] >= -1e-9).all() and (positions[:, 0] <= 1000.0 + 1e-9).all()
            assert (positions[:, 1] >= -1e-9).all() and (positions[:, 1] <= 800.0 + 1e-9).all()

    def test_speed_bounded(self):
        model = self.model(min_speed=1.0, max_speed=2.0)
        previous = model.reset()
        for _ in range(20):
            current = model.step(10.0)
            displacement = np.linalg.norm(current - previous, axis=1)
            # A node can turn mid-step but never exceeds max_speed * dt.
            assert (displacement <= 2.0 * 10.0 + 1e-6).all()
            previous = current

    def test_deterministic_for_seed(self):
        a, b = self.model(seed=7), self.model(seed=7)
        a.reset(), b.reset()
        for _ in range(10):
            np.testing.assert_allclose(a.step(30.0), b.step(30.0))

    def test_pause_freezes_node(self):
        model = self.model(num_nodes=1, min_speed=100.0, max_speed=100.0, pause_s=1e9)
        model.reset()
        # After reaching the first waypoint the node pauses ~forever.
        for _ in range(100):
            model.step(60.0)
        frozen = model.step(60.0)
        next_step = model.step(60.0)
        np.testing.assert_allclose(frozen, next_step)

    def test_rejects_zero_min_speed(self):
        with pytest.raises(ValueError):
            RandomWaypoint(3, 100.0, 100.0, min_speed=0.0)

    def test_rejects_bad_speed_order(self):
        with pytest.raises(ValueError):
            RandomWaypoint(3, 100.0, 100.0, min_speed=2.0, max_speed=1.0)

    def test_rejects_negative_pause(self):
        with pytest.raises(ValueError):
            RandomWaypoint(3, 100.0, 100.0, pause_s=-1.0)


class TestBrownianMotion:
    def test_reflection_keeps_in_bounds(self):
        model = BrownianMotion(num_nodes=10, width=100.0, height=100.0, sigma=50.0, seed=1)
        model.reset()
        for _ in range(100):
            positions = model.step(10.0)
            assert (positions >= -1e-9).all()
            assert (positions[:, 0] <= 100.0 + 1e-9).all()
            assert (positions[:, 1] <= 100.0 + 1e-9).all()

    def test_deterministic(self):
        a = BrownianMotion(4, 100.0, 100.0, seed=3)
        b = BrownianMotion(4, 100.0, 100.0, seed=3)
        a.reset(), b.reset()
        np.testing.assert_allclose(a.step(5.0), b.step(5.0))

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            BrownianMotion(3, 100.0, 100.0, sigma=0.0)

    def test_variance_grows_with_dt(self):
        wide = BrownianMotion(500, 1e9, 1e9, sigma=1.0, seed=0)
        start = wide.reset().copy()
        moved = wide.step(100.0)
        displacement = moved - start
        # Std per axis should be close to sigma * sqrt(dt) = 10.
        assert 8.0 < displacement.std() < 12.0


class TestModelValidation:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            BrownianMotion(0, 10.0, 10.0)

    def test_rejects_bad_region(self):
        with pytest.raises(ValueError):
            BrownianMotion(3, 0.0, 10.0)


class TestExtractContacts:
    def test_close_nodes_are_in_contact(self):
        class Static(MobilityModel):
            def reset(self):
                return np.array([[0.0, 0.0], [5.0, 0.0], [500.0, 0.0]])

            def step(self, dt):
                return self.reset()

        model = Static(3, 1000.0, 1000.0)
        trace = extract_contacts(model, transmission_range=10.0, duration_s=600.0,
                                 sample_interval_s=60.0)
        pairs = {c.pair for c in trace}
        assert pairs == {(1, 2)}
        # A single continuous contact covering the whole run.
        assert len(trace) == 1
        assert trace[0].duration == pytest.approx(600.0)

    def test_contact_opens_and_closes(self):
        class ApproachAndLeave(MobilityModel):
            def __init__(self):
                super().__init__(2, 1000.0, 1000.0)
                self.t = 0.0

            def reset(self):
                self.t = 0.0
                return self._positions()

            def _positions(self):
                # Node 2 walks past node 1: close only in the middle third.
                x = abs(self.t - 300.0) / 10.0
                return np.array([[0.0, 0.0], [x, 0.0]])

            def step(self, dt):
                self.t += dt
                return self._positions()

        trace = extract_contacts(
            ApproachAndLeave(), transmission_range=10.0, duration_s=600.0,
            sample_interval_s=30.0,
        )
        assert len(trace) == 1
        contact = trace[0]
        assert 100.0 < contact.start < 300.0
        assert contact.duration > 60.0

    def test_custom_node_ids(self):
        class Static(MobilityModel):
            def reset(self):
                return np.array([[0.0, 0.0], [1.0, 0.0]])

            def step(self, dt):
                return self.reset()

        trace = extract_contacts(
            Static(2, 10.0, 10.0), transmission_range=5.0, duration_s=120.0,
            sample_interval_s=60.0, node_ids=[10, 20],
        )
        assert trace[0].pair == (10, 20)

    def test_validation(self):
        model = BrownianMotion(2, 10.0, 10.0)
        with pytest.raises(ValueError):
            extract_contacts(model, transmission_range=0.0, duration_s=10.0)
        with pytest.raises(ValueError):
            extract_contacts(model, transmission_range=1.0, duration_s=10.0,
                             sample_interval_s=0.0)
        with pytest.raises(ValueError):
            extract_contacts(model, transmission_range=1.0, duration_s=10.0, node_ids=[1])

    def test_random_waypoint_end_to_end(self):
        model = RandomWaypoint(num_nodes=8, width=300.0, height=300.0,
                               min_speed=1.0, max_speed=2.0, seed=2)
        trace = extract_contacts(model, transmission_range=50.0, duration_s=3600.0,
                                 sample_interval_s=60.0)
        assert len(trace) > 0
        assert trace.node_ids() <= set(range(1, 9))
