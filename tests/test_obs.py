"""Tests for the observability subsystem (repro.obs).

The contracts under test:

* the metrics registry is Prometheus-shaped (golden text exposition) and
  its JSON snapshots round-trip losslessly;
* the disabled path (null registry, disabled telemetry) records nothing
  and never perturbs a simulation -- telemetry-on and telemetry-off runs
  produce byte-identical results;
* the engine threads telemetry through cache and worker pool, and the
  aggregated run manifest validates against the schema;
* fault activations surface as ``repro_fault_events_total`` samples (the
  counts the robustness study used to discard).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.dtn.tracelog import SimulationLog, attach_logging
from repro.experiments import fig5
from repro.experiments.engine import ExperimentEngine, ResultCache, RunPlan, RunUnit
from repro.experiments.persistence import result_to_dict
from repro.experiments.robustness_study import spec as robustness_spec
from repro.experiments.runner import run_spec
from repro.experiments.telemetry_study import run_telemetry_study, telemetry_report
from repro.obs import (
    NULL_PROFILER,
    NULL_REGISTRY,
    MetricsRegistry,
    Profiler,
    SimTelemetry,
    SimulationObserver,
    activated,
    active_telemetry,
    build_manifest,
    load_manifest,
    merge_profiles,
    registry_from_snapshot,
    validate_manifest,
    write_manifest,
)
from repro.obs.manifest import merge_metric_snapshots, plan_hash

SCALE = 0.05  # tiny but non-degenerate; one unit runs in ~25 ms

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def small_spec(seed: int = 0):
    return fig5.spec(scale=SCALE, seed=seed)


def reference_registry() -> MetricsRegistry:
    """A deterministic registry covering all four metric kinds."""
    r = MetricsRegistry()
    requests = r.counter("demo_requests_total", "Requests served, by verb")
    requests.labels(verb="get").inc(3)
    requests.labels(verb="put").inc()
    r.gauge("demo_temperature_celsius", "Current temperature").set(21.5)
    latency = r.histogram(
        "demo_latency_seconds", "Request latency", buckets=(0.1, 0.5, 1.0)
    )
    for value in (0.05, 0.3, 0.7, 2.0):
        latency.observe(value)
    phase = r.timer("demo_phase_seconds", "Phase wall-clock")
    phase.observe(0.25)
    phase.observe(0.75)
    return r


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_counts_and_rejects_negatives(self):
        r = MetricsRegistry()
        c = r.counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_factories_are_idempotent_and_kind_checked(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_labeled_children_are_distinct_series(self):
        r = MetricsRegistry()
        c = r.counter("contacts_total")
        c.labels(scheme="photonet").inc(2)
        c.labels(scheme="spray").inc()
        assert c.labels(scheme="photonet") is c.labels(scheme="photonet")
        samples = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in r.snapshot()["contacts_total"]["samples"]
        }
        assert samples == {(("scheme", "photonet"),): 2.0, (("scheme", "spray"),): 1.0}

    def test_untouched_series_do_not_appear(self):
        r = MetricsRegistry()
        r.counter("silent")
        assert r.snapshot()["silent"]["samples"] == []

    def test_gauge_goes_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_histogram_buckets_are_cumulative_in_prometheus(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 3.0, 9.0):
            h.observe(v)
        text = r.to_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_timer_context_and_decorator(self):
        r = MetricsRegistry()
        t = r.timer("work")
        with t.time():
            pass

        @t.wrap
        def f(x):
            return x + 1

        assert f(1) == 2
        assert t.count == 2
        assert t.sum >= 0.0
        assert "# TYPE work summary" in r.to_prometheus()

    def test_golden_prometheus_exposition(self):
        assert reference_registry().to_prometheus() == GOLDEN.read_text(encoding="utf-8")

    def test_snapshot_round_trips(self):
        snapshot = reference_registry().snapshot()
        assert registry_from_snapshot(snapshot).snapshot() == snapshot

    def test_snapshot_survives_json(self):
        snapshot = reference_registry().snapshot()
        rehydrated = json.loads(json.dumps(snapshot))
        assert registry_from_snapshot(rehydrated).snapshot() == snapshot

    def test_prometheus_survives_round_trip(self):
        r = reference_registry()
        assert registry_from_snapshot(r.snapshot()).to_prometheus() == r.to_prometheus()


class TestHistogramQuantiles:
    """Edge cases of the bucket-interpolated quantile estimator (the
    number behind every p50/p95/p99 the service and loadgen report)."""

    def _histogram(self, buckets=(1.0, 2.0, 4.0)):
        return MetricsRegistry().histogram("q", buckets=buckets)

    def test_empty_histogram_is_nan(self):
        h = self._histogram()
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.quantile(0.0))
        assert math.isnan(h.quantile(1.0))

    def test_out_of_range_q_raises(self):
        h = self._histogram()
        h.observe(0.5)
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError, match="quantile"):
                h.quantile(q)

    def test_q0_is_the_lower_edge_of_the_first_nonempty_bucket(self):
        h = self._histogram()
        h.observe(3.0)  # lands in (2, 4]
        assert h.quantile(0.0) == 2.0

    def test_q1_is_the_upper_edge_of_the_last_nonempty_bucket(self):
        h = self._histogram()
        for value in (0.5, 1.5, 3.0):
            h.observe(value)
        assert h.quantile(1.0) == 4.0

    def test_interpolates_within_the_winning_bucket(self):
        h = self._histogram(buckets=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        # All mass in [0, 10]: the median interpolates to the midpoint.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(0.25) == pytest.approx(2.5)

    def test_all_mass_beyond_the_last_bucket_clamps_to_it(self):
        h = self._histogram(buckets=(1.0, 2.0))
        for _ in range(5):
            h.observe(100.0)  # implicit +Inf bucket only
        assert h.count == 5
        assert sum(h.bucket_counts) == 0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 2.0

    def test_mixed_finite_and_overflow_mass(self):
        h = self._histogram(buckets=(1.0,))
        h.observe(0.5)
        h.observe(50.0)  # overflow
        # The median sits in the finite bucket, the tail clamps.
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(0.99) == 1.0

    def test_monotone_in_q(self):
        h = self._histogram(buckets=(0.1, 0.5, 1.0, 5.0))
        for value in (0.05, 0.3, 0.3, 0.9, 2.0, 7.0):
            h.observe(value)
        quantiles = [h.quantile(q / 20.0) for q in range(21)]
        assert quantiles == sorted(quantiles)


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("anything")
        assert c is NULL_REGISTRY.gauge("other")  # one shared null metric
        c.inc()
        c.labels(a="b").observe(3)
        with NULL_REGISTRY.timer("t").time():
            pass
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.to_prometheus() == ""


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------


class TestProfiler:
    def test_phase_and_decorator_accumulate(self):
        p = Profiler()
        with p.phase("select"):
            pass

        @p.profile("select")
        def f():
            return 7

        assert f() == 7
        p.add("transfer", 0.5)
        snap = p.snapshot()
        assert snap["select"]["calls"] == 2
        assert snap["transfer"] == {
            "calls": 1, "total_s": 0.5, "min_s": 0.5, "max_s": 0.5,
        }

    def test_disabled_profiler_records_nothing(self):
        with NULL_PROFILER.phase("x"):
            pass
        NULL_PROFILER.add("x", 1.0)
        assert NULL_PROFILER.snapshot() == {}

    def test_merge_profiles(self):
        a = {"sel": {"calls": 2, "total_s": 1.0, "min_s": 0.4, "max_s": 0.6}}
        b = {"sel": {"calls": 1, "total_s": 0.2, "min_s": 0.2, "max_s": 0.2},
             "xfer": {"calls": 1, "total_s": 0.1, "min_s": 0.1, "max_s": 0.1}}
        merged = merge_profiles([a, b])
        assert merged["sel"] == {
            "calls": 3, "total_s": 1.2, "min_s": 0.2, "max_s": 0.6,
        }
        assert merged["xfer"]["calls"] == 1


# ----------------------------------------------------------------------
# Runtime activation
# ----------------------------------------------------------------------


class TestRuntime:
    def test_inactive_by_default(self):
        assert active_telemetry() is None

    def test_activation_nests_and_restores(self):
        outer, inner = SimTelemetry(), SimTelemetry()
        with activated(outer):
            assert active_telemetry() is outer
            with activated(inner):
                assert active_telemetry() is inner
            assert active_telemetry() is outer
        assert active_telemetry() is None

    def test_none_is_a_passthrough(self):
        with activated(None):
            assert active_telemetry() is None


# ----------------------------------------------------------------------
# SimTelemetry + simulation wiring
# ----------------------------------------------------------------------


class TestTelemetry:
    def test_disabled_telemetry_accepts_every_hook(self):
        tel = SimTelemetry(enabled=False)
        tel.on_contact("contact")
        tel.on_photo_created()
        tel.on_selection(5, 3, 12, 2, 0.01, 0.002)
        tel.on_transfer_outcome(3, 2, 0, 1, 100, 0, 50, True, 0.01)
        tel.on_cache_event("hit", 4)
        tel.on_encounter()
        assert tel.snapshot()["metrics"] == {}
        assert tel.snapshot()["profile"] == {}

    def test_telemetry_never_perturbs_the_simulation(self):
        plain = run_spec(small_spec(), "our-scheme")
        tel = SimTelemetry()
        instrumented = run_spec(small_spec(), "our-scheme", telemetry=tel)
        assert result_to_dict(plain) == result_to_dict(instrumented)

    def test_instrumented_run_records_the_paper_internals(self):
        tel = SimTelemetry()
        run_spec(small_spec(), "our-scheme", telemetry=tel)
        snap = tel.snapshot()
        metrics = snap["metrics"]

        def total(name):
            return sum(s["value"] for s in metrics.get(name, {}).get("samples", []))

        assert total("repro_contacts_total") > 0
        assert total("repro_transfer_bytes_total") > 0
        assert total("repro_metadata_cache_events_total") > 0
        assert total("repro_selection_iterations_total") > 0
        assert snap["coverage_curve"], "uplinks must produce coverage points"
        assert snap["buffer_occupancy"], "SAMPLE events must produce occupancy points"
        assert set(snap["profile"]) == {"selection", "expected_coverage", "transfer"}
        assert snap["scheme"] == "our-scheme"

    def test_coverage_curve_is_monotone_in_delivered(self):
        tel = SimTelemetry()
        run_spec(small_spec(), "our-scheme", telemetry=tel)
        delivered = [point["delivered"] for point in tel.coverage_curve]
        assert delivered == sorted(delivered)

    def test_fault_activations_surface_as_metrics(self):
        tel = SimTelemetry()
        run_spec(robustness_spec(1.0, scale=SCALE), "our-scheme", telemetry=tel)
        samples = tel.snapshot()["metrics"]["repro_fault_events_total"]["samples"]
        assert samples, "intensity-1.0 fault plan must activate faults"
        assert all(s["value"] > 0 for s in samples)
        assert any(s["labels"]["fault"] == "contacts_truncated" for s in samples)


class TestObserverWiring:
    def test_simulation_log_implements_the_protocol(self):
        assert isinstance(SimulationLog(), SimulationObserver)
        assert isinstance(SimTelemetry(), SimulationObserver)

    def test_attach_logging_fans_out_to_observers(self):
        from repro.experiments.runner import run_scenario
        from repro.dtn.simulator import Simulation
        from repro.routing import create_scheme

        scenario = small_spec().build()
        tel = SimTelemetry()
        wrapped, log = attach_logging(create_scheme("our-scheme"), observers=(tel,))
        Simulation(
            trace=scenario.trace,
            pois=scenario.pois,
            photo_arrivals=scenario.photo_arrivals,
            scheme=wrapped,
            config=scenario.config,
            gateway_ids=scenario.gateway_ids,
            end_time_s=scenario.end_time_s,
            telemetry=tel,
        ).run()
        assert len(log) > 0
        movements = tel.snapshot()["metrics"]["repro_log_events_total"]["samples"]
        observed = sum(s["value"] for s in movements)
        assert observed > 0
        expected = sum(
            sum(len(ids) for ids in entry.gained.values())
            + sum(len(ids) for ids in entry.lost.values())
            + len(entry.delivered)
            for entry in log.entries
        )
        assert observed == expected


# ----------------------------------------------------------------------
# Engine integration + manifest
# ----------------------------------------------------------------------


class TestEngineTelemetry:
    def test_unit_key_depends_on_telemetry_flag(self):
        unit = RunUnit(spec=small_spec(), scheme="our-scheme")
        assert unit.key() != RunUnit(
            spec=small_spec(), scheme="our-scheme", telemetry=True
        ).key()

    def test_engine_builds_a_valid_manifest(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        engine = ExperimentEngine(telemetry=True, manifest_path=manifest_path)
        plan = RunPlan.comparison(small_spec(), ("our-scheme", "spray-and-wait"))
        outcomes = engine.run(plan)
        assert all(o.telemetry is not None for o in outcomes)
        manifest = load_manifest(manifest_path)  # validates structurally
        assert manifest == engine.last_manifest
        assert manifest["schemes"] == ["our-scheme", "spray-and-wait"]

        def total(name):
            return sum(
                s["value"] for s in manifest["metrics"][name]["samples"]
            )

        assert total("repro_contacts_total") > 0
        assert total("repro_transfer_bytes_total") > 0
        assert total("repro_metadata_cache_events_total") > 0
        assert manifest["coverage_over_time"]["our-scheme"]
        assert manifest["timings"]["profile"]["selection"]["calls"] > 0

    def test_cached_units_keep_their_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        plan = RunPlan.comparison(small_spec(), ("our-scheme",))
        first = ExperimentEngine(telemetry=True, cache=cache)
        fresh = first.run(plan)
        second = ExperimentEngine(telemetry=True, cache=cache)
        served = second.run(plan)
        assert [o.cached for o in fresh] == [False]
        assert [o.cached for o in served] == [True]
        assert served[0].telemetry["metrics"] == fresh[0].telemetry["metrics"]
        assert second.last_manifest["metrics"] == first.last_manifest["metrics"]

    def test_telemetry_off_engine_attaches_nothing(self):
        outcomes = ExperimentEngine().run(
            RunPlan.comparison(small_spec(), ("our-scheme",))
        )
        assert outcomes[0].telemetry is None

    def test_telemetry_study_end_to_end(self, tmp_path):
        manifest = run_telemetry_study(
            scale=SCALE,
            schemes=("our-scheme",),
            engine=ExperimentEngine(),
            manifest_path=tmp_path / "m.json",
        )
        assert validate_manifest(manifest) == []
        report = telemetry_report(manifest)
        assert "repro_contacts_total" in report
        assert "wall-clock profile" in report


class TestManifest:
    def test_plan_hash_is_order_sensitive(self):
        assert plan_hash(["a", "b"]) != plan_hash(["b", "a"])
        assert plan_hash(["a", "b"]) == plan_hash(iter(["a", "b"]))

    def test_merge_metric_snapshots_sums_counters_averages_gauges(self):
        snap = lambda c, g: {
            "hits": {"kind": "counter", "help": "", "samples": [
                {"labels": {}, "value": c}]},
            "depth": {"kind": "gauge", "help": "", "samples": [
                {"labels": {}, "value": g}]},
        }
        merged = merge_metric_snapshots([snap(2, 10), snap(3, 20)])
        assert merged["hits"]["samples"][0]["value"] == 5
        assert merged["depth"]["samples"][0]["value"] == 15

    def test_validate_rejects_structural_damage(self, tmp_path):
        engine = ExperimentEngine(telemetry=True)
        engine.run(RunPlan.comparison(small_spec(), ("our-scheme",)))
        manifest = engine.last_manifest
        assert validate_manifest(manifest) == []

        broken = dict(manifest)
        del broken["plan_hash"]
        assert any("plan_hash" in e for e in validate_manifest(broken))

        broken = dict(manifest, plan_hash="nothex")
        assert any("plan_hash" in e for e in validate_manifest(broken))

        broken = dict(manifest, units=[])
        assert any("units" in e for e in validate_manifest(broken))

        with pytest.raises(ValueError):
            path = tmp_path / "broken.json"
            path.write_text(json.dumps(dict(manifest, schemes=[])))
            load_manifest(path)

    def test_write_and_load_round_trip(self, tmp_path):
        engine = ExperimentEngine(telemetry=True)
        engine.run(RunPlan.comparison(small_spec(), ("our-scheme",)))
        path = write_manifest(tmp_path / "deep" / "m.json", engine.last_manifest)
        assert load_manifest(path) == engine.last_manifest

    def test_build_manifest_counts_cached_and_executed(self):
        engine = ExperimentEngine(telemetry=True)
        outcomes = engine.run(RunPlan.comparison(small_spec(), ("our-scheme",)))
        manifest = build_manifest(outcomes)
        assert manifest["timings"]["executed_units"] == 1
        assert manifest["timings"]["cached_units"] == 0
        assert manifest["seeds"] == [0]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCli:
    def _write_manifest(self, tmp_path) -> Path:
        engine = ExperimentEngine(telemetry=True)
        engine.run(RunPlan.comparison(small_spec(), ("our-scheme",)))
        return write_manifest(tmp_path / "manifest.json", engine.last_manifest)

    def test_metrics_command_summarizes(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_manifest(tmp_path)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_contacts_total" in out

    def test_metrics_command_prometheus(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_manifest(tmp_path)
        assert main(["metrics", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_contacts_total counter" in out

    def test_metrics_command_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["metrics", str(path)]) == 1

    def test_telemetry_flag_writes_manifest(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "fig5", "--scale", str(SCALE), "--runs", "1",
            "--no-cache", "--telemetry",
        ])
        assert code == 0
        manifest = load_manifest(tmp_path / "manifest.json")
        assert manifest["schemes"]
