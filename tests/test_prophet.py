"""Tests for the PROPHET delivery-predictability implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.prophet import ProphetParameters, ProphetTable


def table(owner=1, p_init=0.75, beta=0.25, gamma=0.98, time_unit=1.0):
    return ProphetTable(
        owner, ProphetParameters(p_init=p_init, beta=beta, gamma=gamma, time_unit=time_unit)
    )


class TestParameters:
    def test_table_i_defaults(self):
        params = ProphetParameters()
        assert params.p_init == 0.75
        assert params.beta == 0.25
        assert params.gamma == 0.98

    def test_validation(self):
        with pytest.raises(ValueError):
            ProphetParameters(p_init=0.0)
        with pytest.raises(ValueError):
            ProphetParameters(beta=1.5)
        with pytest.raises(ValueError):
            ProphetParameters(gamma=0.0)
        with pytest.raises(ValueError):
            ProphetParameters(time_unit=0.0)


class TestEncounterRule:
    def test_first_encounter_sets_p_init(self):
        t = table()
        assert t.on_encounter(2, now=0.0) == pytest.approx(0.75)

    def test_repeat_encounters_converge_to_one(self):
        t = table()
        t.on_encounter(2, now=0.0)
        second = t.on_encounter(2, now=0.0)
        assert second == pytest.approx(0.75 + 0.25 * 0.75)
        for _ in range(50):
            t.on_encounter(2, now=0.0)
        assert t.predictability(2, 0.0) == pytest.approx(1.0, abs=1e-4)

    def test_self_encounter_rejected(self):
        with pytest.raises(ValueError):
            table(owner=1).on_encounter(1, now=0.0)

    def test_unknown_destination_is_zero(self):
        assert table().predictability(99, now=0.0) == 0.0

    def test_self_predictability_is_one(self):
        assert table(owner=1).predictability(1, now=0.0) == 1.0


class TestAgingRule:
    def test_aging_decays_geometrically(self):
        t = table(gamma=0.5, time_unit=1.0)
        t.on_encounter(2, now=0.0)
        assert t.predictability(2, now=1.0) == pytest.approx(0.75 * 0.5)
        assert t.predictability(2, now=3.0) == pytest.approx(0.75 * 0.125)

    def test_aging_uses_time_unit(self):
        t = table(gamma=0.5, time_unit=100.0)
        t.on_encounter(2, now=0.0)
        assert t.predictability(2, now=100.0) == pytest.approx(0.75 * 0.5)
        assert t.predictability(2, now=50.0) == pytest.approx(0.75 * 0.5**0.5)

    def test_encounter_applies_pending_aging_first(self):
        t = table(gamma=0.5, time_unit=1.0)
        t.on_encounter(2, now=0.0)
        value = t.on_encounter(2, now=1.0)
        aged = 0.75 * 0.5
        assert value == pytest.approx(aged + (1 - aged) * 0.75)

    def test_read_does_not_mutate(self):
        t = table(gamma=0.5, time_unit=1.0)
        t.on_encounter(2, now=0.0)
        t.predictability(2, now=5.0)
        # Reading at a later time must not bake in the decay permanently.
        assert t.predictability(2, now=1.0) == pytest.approx(0.75 * 0.5)


class TestTransitivityRule:
    def test_transitive_update(self):
        t = table(beta=0.25)
        t.on_encounter(2, now=0.0)  # P(1,2) = 0.75
        t.apply_transitivity(2, {3: 0.8}, now=0.0)
        assert t.predictability(3, now=0.0) == pytest.approx(0.75 * 0.8 * 0.25)

    def test_transitivity_keeps_max(self):
        t = table(beta=0.25)
        t.on_encounter(3, now=0.0)  # direct P(1,3) = 0.75
        t.on_encounter(2, now=0.0)
        t.apply_transitivity(2, {3: 0.9}, now=0.0)
        # Transitive value 0.75*0.9*0.25 = 0.169 < direct 0.75: unchanged.
        assert t.predictability(3, now=0.0) == pytest.approx(0.75)

    def test_transitivity_skips_self_and_peer(self):
        t = table(owner=1)
        t.on_encounter(2, now=0.0)
        t.apply_transitivity(2, {1: 0.9, 2: 0.9}, now=0.0)
        assert t.predictability(2, now=0.0) == pytest.approx(0.75)

    def test_transitivity_without_encounter_is_noop(self):
        t = table()
        t.apply_transitivity(2, {3: 0.9}, now=0.0)
        assert t.predictability(3, now=0.0) == 0.0


class TestSnapshot:
    def test_snapshot_reflects_aging(self):
        t = table(gamma=0.5, time_unit=1.0)
        t.on_encounter(2, now=0.0)
        snap = t.snapshot(now=1.0)
        assert snap[2] == pytest.approx(0.375)

    def test_snapshot_excludes_zeroed_entries(self):
        t = table(gamma=0.5, time_unit=1.0)
        t.on_encounter(2, now=0.0)
        snap = t.snapshot(now=10000.0)
        assert snap == {}

    def test_known_destinations(self):
        t = table()
        t.on_encounter(5, now=0.0)
        t.on_encounter(2, now=0.0)
        assert t.known_destinations() == (2, 5)


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.sampled_from([2, 3, 4]), st.floats(0.0, 100.0)),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_predictability_stays_in_unit_interval(self, encounters):
        t = table()
        for peer, dt in sorted(encounters, key=lambda e: e[1]):
            t.on_encounter(peer, now=dt)
            t.apply_transitivity(peer, {d: 0.5 for d in (2, 3, 4) if d != peer}, now=dt)
            for dest in (2, 3, 4):
                assert 0.0 <= t.predictability(dest, now=dt) <= 1.0

    def test_gateway_develops_higher_predictability(self):
        """A node meeting the CC often must out-predict one that never does."""
        gateway = table(owner=1, time_unit=3600.0)
        bystander = table(owner=2, time_unit=3600.0)
        for hour in range(10):
            gateway.on_encounter(0, now=hour * 3600.0)
        assert gateway.predictability(0, now=10 * 3600.0) > bystander.predictability(
            0, now=10 * 3600.0
        )
