"""Tests for quality filtering and time-decayed value (Section II-C)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coverage import CoverageValue
from repro.core.metadata import Photo
from repro.core.quality import QualityPolicy, TimeDecay, discounted_value, quality_filter

from helpers import make_photo


def photo_with_quality(quality: float, taken_at: float = 0.0) -> Photo:
    base = make_photo(0, 0, 0, taken_at=taken_at)
    return Photo(metadata=base.metadata, quality=quality, taken_at=taken_at)


class TestQualityFilter:
    def test_keeps_above_threshold(self):
        good = photo_with_quality(0.9)
        bad = photo_with_quality(0.2)
        assert quality_filter([good, bad], threshold=0.5) == [good]

    def test_threshold_inclusive(self):
        exact = photo_with_quality(0.5)
        assert quality_filter([exact], threshold=0.5) == [exact]

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            quality_filter([], threshold=1.5)

    @given(st.lists(st.floats(0.0, 1.0), max_size=20), st.floats(0.0, 1.0))
    def test_filter_is_monotone(self, qualities, threshold):
        photos = [photo_with_quality(q) for q in qualities]
        kept = quality_filter(photos, threshold)
        assert all(p.quality >= threshold for p in kept)
        assert len(kept) <= len(photos)


class TestTimeDecay:
    def test_fresh_photo_full_value(self):
        decay = TimeDecay(tau_s=3600.0)
        photo = photo_with_quality(1.0, taken_at=100.0)
        assert decay.factor(photo, now=100.0) == 1.0

    def test_exponential_form(self):
        decay = TimeDecay(tau_s=3600.0)
        photo = photo_with_quality(1.0, taken_at=0.0)
        assert decay.factor(photo, now=3600.0) == pytest.approx(math.exp(-1.0))

    def test_future_clock_clamped(self):
        decay = TimeDecay(tau_s=100.0)
        photo = photo_with_quality(1.0, taken_at=500.0)
        assert decay.factor(photo, now=0.0) == 1.0

    def test_half_life(self):
        decay = TimeDecay(tau_s=1000.0)
        photo = photo_with_quality(1.0, taken_at=0.0)
        assert decay.factor(photo, now=decay.half_life_s()) == pytest.approx(0.5)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            TimeDecay(tau_s=0.0)


class TestDiscountedValue:
    def test_scales_by_quality(self):
        photo = photo_with_quality(0.5)
        value = discounted_value(CoverageValue(1.0, 2.0), photo, now=0.0)
        assert value == CoverageValue(0.5, 1.0)

    def test_combines_quality_and_decay(self):
        photo = photo_with_quality(0.5, taken_at=0.0)
        decay = TimeDecay(tau_s=100.0)
        value = discounted_value(CoverageValue(1.0, 0.0), photo, now=100.0, decay=decay)
        assert value.point == pytest.approx(0.5 * math.exp(-1.0))

    def test_order_preserved_under_common_discount(self):
        photo = photo_with_quality(0.7)
        high = CoverageValue(2.0, 1.0)
        low = CoverageValue(1.0, 5.0)
        assert discounted_value(high, photo, 0.0) > discounted_value(low, photo, 0.0)


class TestQualityPolicy:
    def test_admits_by_quality(self):
        policy = QualityPolicy(min_quality=0.5)
        assert policy.admits(photo_with_quality(0.8), now=0.0)
        assert not policy.admits(photo_with_quality(0.3), now=0.0)

    def test_admits_by_age(self):
        policy = QualityPolicy(max_age_s=100.0)
        old = photo_with_quality(1.0, taken_at=0.0)
        assert policy.admits(old, now=50.0)
        assert not policy.admits(old, now=200.0)

    def test_filter_generator(self):
        policy = QualityPolicy(min_quality=0.5)
        photos = [photo_with_quality(q) for q in (0.2, 0.6, 0.9)]
        kept = list(policy.filter(photos, now=0.0))
        assert [p.quality for p in kept] == [0.6, 0.9]

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityPolicy(min_quality=2.0)
        with pytest.raises(ValueError):
            QualityPolicy(max_age_s=-1.0)

    def test_permissive_default(self):
        policy = QualityPolicy()
        assert policy.admits(photo_with_quality(0.0), now=1e9)


class TestQualityIntegration:
    def test_generator_draws_quality_in_range(self):
        from repro.workload.photos import PhotoGenerator, PhotoGeneratorSpec

        generator = PhotoGenerator(PhotoGeneratorSpec(quality_range=(0.3, 0.8)), seed=0)
        for _ in range(100):
            photo = generator.next_photo()
            assert 0.3 <= photo.quality <= 0.8

    def test_generator_default_quality_is_one(self):
        from repro.workload.photos import PhotoGenerator

        assert PhotoGenerator(seed=0).next_photo().quality == 1.0

    def test_generator_rejects_bad_quality_range(self):
        from repro.workload.photos import PhotoGeneratorSpec

        with pytest.raises(ValueError):
            PhotoGeneratorSpec(quality_range=(0.8, 0.3))
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(quality_range=(0.0, 1.5))

    def test_scheme_rejects_low_quality_photos(self):
        from repro.core.geometry import Point
        from repro.core.metadata import Photo
        from repro.core.poi import PoI, PoIList
        from repro.dtn.simulator import Simulation, SimulationConfig
        from repro.routing.coverage_scheme import CoverageSelectionScheme
        from repro.traces.model import ContactTrace
        from repro.workload.photos import PhotoArrival
        from helpers import photo_at_aspect

        base = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        blurry = Photo(metadata=base.metadata, quality=0.1)
        sharp = Photo(metadata=base.metadata, quality=0.9)
        scheme = CoverageSelectionScheme(quality_policy=QualityPolicy(min_quality=0.5))
        sim = Simulation(
            trace=ContactTrace([]),
            pois=PoIList([PoI(location=Point(0.0, 0.0))]),
            photo_arrivals=[PhotoArrival(0.0, 1, blurry), PhotoArrival(1.0, 1, sharp)],
            scheme=scheme,
            config=SimulationConfig(sample_interval_s=10.0),
            end_time_s=20.0,
        )
        sim.run()
        assert sim.nodes[1].storage.photo_ids() == [sharp.photo_id]
