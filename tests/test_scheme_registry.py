"""Tests for the decorator-based scheme registry (repro.routing.registry)."""

from __future__ import annotations

import pytest

from repro.routing import (
    UnknownSchemeError,
    coerce_scheme_value,
    create_scheme,
    parse_scheme_spec,
    register_scheme,
    scheme_defaults,
    scheme_names,
    unregister_scheme,
)
from repro.routing.base import RoutingScheme
from repro.routing.coverage_scheme import CoverageSelectionScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme


class TestParsing:
    def test_plain_name(self):
        assert parse_scheme_spec("epidemic") == ("epidemic", {})

    def test_parameters_are_literals(self):
        name, kwargs = parse_scheme_spec(
            "spray-and-wait:initial_copies=8,use_metadata_cache=True,floor=0.5"
        )
        assert name == "spray-and-wait"
        assert kwargs == {"initial_copies": 8, "use_metadata_cache": True, "floor": 0.5}

    def test_non_literal_falls_back_to_string(self):
        assert parse_scheme_spec("x:mode=fast")[1] == {"mode": "fast"}

    def test_whitespace_tolerated(self):
        assert parse_scheme_spec(" x : a = 1 , b = 2 ") == ("x", {"a": 1, "b": 2})

    @pytest.mark.parametrize("bad", [":a=1", "x:a", "x:=1", "x:,"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_scheme_spec(bad)

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("8", 8),
            ("-3", -3),
            ("0.5", 0.5),
            ("1e-3", 1e-3),
            ("True", True),
            ("true", True),
            ("FALSE", False),
            ("none", None),
            ("null", None),
            ("'quoted'", "quoted"),
            ("fast", "fast"),
        ],
    )
    def test_typed_coercion(self, raw, expected):
        assert coerce_scheme_value(raw) == expected
        # int stays int, never silently floats
        if isinstance(expected, bool):
            assert isinstance(coerce_scheme_value(raw), bool)
        elif isinstance(expected, int):
            assert isinstance(coerce_scheme_value(raw), int)

    def test_require_registered_validates_name(self):
        assert parse_scheme_spec("epidemic", require_registered=True)[0] == "epidemic"
        with pytest.raises(UnknownSchemeError, match="known:"):
            parse_scheme_spec("no-such-scheme", require_registered=True)


class TestRegistry:
    def test_paper_schemes_registered(self):
        names = scheme_names()
        for expected in (
            "best-possible",
            "our-scheme",
            "no-metadata",
            "modified-spray",
            "spray-and-wait",
            "epidemic",
            "direct",
            "photonet",
        ):
            assert expected in names
        assert list(names) == sorted(names)

    def test_create_plain(self):
        scheme = create_scheme("spray-and-wait")
        assert isinstance(scheme, SprayAndWaitScheme)
        assert scheme.initial_copies == 4  # registered default

    def test_create_parameterized_inline(self):
        assert create_scheme("spray-and-wait:initial_copies=8").initial_copies == 8

    def test_overrides_beat_inline_beat_defaults(self):
        assert (
            create_scheme("spray-and-wait:initial_copies=8", initial_copies=2).initial_copies
            == 2
        )

    def test_same_class_two_registrations(self):
        ours = create_scheme("our-scheme")
        nometa = create_scheme("no-metadata")
        assert isinstance(ours, CoverageSelectionScheme)
        assert isinstance(nometa, CoverageSelectionScheme)
        assert ours.use_metadata_cache and not nometa.use_metadata_cache

    def test_fresh_instance_per_call(self):
        assert create_scheme("epidemic") is not create_scheme("epidemic")

    def test_unknown_scheme_raises_keyerror(self):
        # UnknownSchemeError subclasses KeyError, so legacy handlers work.
        with pytest.raises(KeyError, match="unknown scheme"):
            create_scheme("no-such-scheme")

    def test_unknown_scheme_error_lists_registered_names(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            create_scheme("no-such-scheme")
        message = str(excinfo.value)
        assert "no-such-scheme" in message
        for name in ("our-scheme", "epidemic"):
            assert name in message
        assert excinfo.value.scheme_name == "no-such-scheme"

    def test_scheme_defaults_returns_copy(self):
        defaults = scheme_defaults("spray-and-wait")
        assert defaults == {"initial_copies": 4}
        defaults["initial_copies"] = 99
        assert scheme_defaults("spray-and-wait") == {"initial_copies": 4}

    def test_duplicate_registration_rejected(self):
        @register_scheme("registry-test-dup")
        class Dup(RoutingScheme):  # pragma: no cover - never instantiated
            name = "registry-test-dup"

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme("registry-test-dup")(Dup)
        finally:
            unregister_scheme("registry-test-dup")
        assert "registry-test-dup" not in scheme_names()

    @pytest.mark.parametrize("bad", ["", "a:b", "a,b", "a=b"])
    def test_reserved_characters_rejected_in_names(self, bad):
        with pytest.raises(ValueError, match="invalid scheme name"):
            register_scheme(bad)


class TestShimRemoved:
    def test_scheme_factories_gone(self):
        """The deprecated SCHEME_FACTORIES shim must stay deleted."""
        import repro.experiments.runner as runner
        import repro.routing.registry as registry

        assert not hasattr(runner, "SCHEME_FACTORIES")
        assert not hasattr(registry, "DeprecatedFactoryView")
