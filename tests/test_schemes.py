"""Behavioral tests for the routing schemes on small controlled scenarios."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import Point
from repro.core.poi import PoI, PoIList
from repro.dtn.simulator import Simulation, SimulationConfig
from repro.routing.best_possible import BestPossibleScheme
from repro.routing.coverage_scheme import CoverageSelectionScheme, NoMetadataScheme
from repro.routing.modified_spray import ModifiedSprayScheme
from repro.routing.photonet import PhotoNetScheme, photo_features
from repro.routing.spray_and_wait import SprayAndWaitScheme
from repro.traces.model import ContactRecord, ContactTrace
from repro.workload.photos import PhotoArrival

from helpers import MB, make_photo, photo_at_aspect

THETA = math.radians(30.0)
PHOTO = 4 * MB


def build_sim(
    scheme,
    contacts,
    arrivals,
    pois=None,
    storage_bytes=10 * PHOTO,
    unlimited=True,
    bandwidth=2 * MB,
    end_time=None,
):
    trace = ContactTrace([ContactRecord(*c) for c in contacts])
    poi_list = pois if pois is not None else PoIList([PoI(location=Point(0.0, 0.0))])
    config = SimulationConfig(
        storage_bytes=storage_bytes,
        bandwidth_bytes_per_s=bandwidth,
        unlimited_contacts=unlimited,
        effective_angle=THETA,
        sample_interval_s=3600.0,
    )
    return Simulation(
        trace=trace,
        pois=poi_list,
        photo_arrivals=arrivals,
        scheme=scheme,
        config=config,
        end_time_s=end_time,
    )


def arrival(time, owner, photo):
    return PhotoArrival(time=time, owner_id=owner, photo=photo)


class TestCoverageScheme:
    def test_photo_relayed_to_gateway_and_delivered(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 1, 2, 600.0), (200.0, 0, 2, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert result.delivered_photos == 1
        assert sim.command_center.photos() == [photo]

    def test_useless_photo_not_delivered(self):
        useless = make_photo(9000.0, 9000.0, 0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 0, 1, 600.0)],
            arrivals=[arrival(0.0, 1, useless)],
        )
        result = sim.run()
        assert result.delivered_photos == 0

    def test_redundant_photo_not_delivered_twice(self):
        """Second identical-coverage photo adds nothing -> CC refuses it."""
        first = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        second = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 0, 1, 600.0), (200.0, 0, 2, 600.0)],
            arrivals=[arrival(0.0, 1, first), arrival(0.0, 2, second)],
        )
        result = sim.run()
        assert result.delivered_photos == 1

    def test_node_drops_photo_after_delivery(self):
        """Acknowledgment: once CC holds the photo, the node frees storage."""
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 0, 1, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        sim.run()
        assert len(sim.nodes[1].storage) == 0

    def test_contact_reallocates_toward_better_deliverer(self):
        """Node 2 (meets CC often) should end up holding the useful photo."""
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        contacts = [(float(t), 0, 2, 300.0) for t in (100, 200, 300)]
        contacts.append((400.0, 1, 2, 600.0))
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=contacts,
            arrivals=[arrival(350.0, 1, photo)],
            end_time=500.0,
        )
        sim.run()
        assert photo.photo_id in sim.nodes[2].storage

    def test_metadata_cache_populated_after_contact(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 1, 2, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        sim.run()
        assert 2 in sim.nodes[1].cache
        assert 1 in sim.nodes[2].cache

    def test_no_metadata_keeps_cache_empty(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            NoMetadataScheme(),
            contacts=[(100.0, 1, 2, 600.0), (200.0, 0, 2, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert len(sim.nodes[1].cache) == 0
        assert len(sim.nodes[2].cache) == 0
        assert result.delivered_photos == 1  # still works end to end

    def test_bandwidth_limit_truncates_contact(self):
        """A 1-second contact at 2 MB/s cannot move a 4 MB photo."""
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 1, 2, 1.0)],
            arrivals=[arrival(0.0, 1, photo)],
            unlimited=False,
        )
        sim.run()
        assert photo.photo_id not in sim.nodes[2].storage

    def test_storage_constraint_prioritizes_diverse_aspects(self):
        """With room for 2, the node keeps the two most diverse aspects."""
        poi = Point(0.0, 0.0)
        base = photo_at_aspect(poi, aspect_deg=0.0)
        near = photo_at_aspect(poi, aspect_deg=10.0)
        far = photo_at_aspect(poi, aspect_deg=180.0)
        sim = build_sim(
            CoverageSelectionScheme(),
            contacts=[(100.0, 1, 2, 600.0)],
            arrivals=[arrival(0.0, 1, base), arrival(0.0, 1, near), arrival(0.0, 2, far)],
            storage_bytes=2 * PHOTO,
        )
        sim.run()
        # Between them the nodes must retain base & far (near is redundant).
        held = set(sim.nodes[1].storage.photo_ids()) | set(sim.nodes[2].storage.photo_ids())
        assert base.photo_id in held
        assert far.photo_id in held

    def test_photo_creation_eviction_prefers_covering(self):
        scheme = CoverageSelectionScheme()
        useless = make_photo(9000.0, 9000.0, 0.0)
        useful = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            scheme,
            contacts=[],
            arrivals=[arrival(0.0, 1, useless), arrival(1.0, 1, useful)],
            storage_bytes=1 * PHOTO,
            end_time=10.0,
        )
        sim.run()
        assert sim.nodes[1].storage.photo_ids() == [useful.photo_id]


class TestSprayAndWait:
    def test_copies_halve_on_spray(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        scheme = SprayAndWaitScheme(initial_copies=4)
        sim = build_sim(
            scheme,
            contacts=[(100.0, 1, 2, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        sim.run()
        assert sim.nodes[1].scratch["spray_copies"][photo.photo_id] == 2
        assert sim.nodes[2].scratch["spray_copies"][photo.photo_id] == 2

    def test_wait_phase_blocks_peer_forwarding(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        scheme = SprayAndWaitScheme(initial_copies=1)
        sim = build_sim(
            scheme,
            contacts=[(100.0, 1, 2, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        sim.run()
        assert photo.photo_id not in sim.nodes[2].storage

    def test_destination_always_receives(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        scheme = SprayAndWaitScheme(initial_copies=1)
        sim = build_sim(
            scheme,
            contacts=[(100.0, 0, 1, 600.0)],
            arrivals=[arrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert result.delivered_photos == 1
        assert photo.photo_id not in sim.nodes[1].storage  # released after delivery

    def test_content_blind_delivers_useless_photos(self):
        """The defining weakness: junk photos consume the uplink."""
        useless = make_photo(9000.0, 9000.0, 0.0)
        sim = build_sim(
            SprayAndWaitScheme(),
            contacts=[(100.0, 0, 1, 600.0)],
            arrivals=[arrival(0.0, 1, useless)],
        )
        result = sim.run()
        assert result.delivered_photos == 1

    def test_tail_drop_when_full(self):
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=float(d)) for d in range(3)]
        sim = build_sim(
            SprayAndWaitScheme(),
            contacts=[],
            arrivals=[arrival(float(i), 1, p) for i, p in enumerate(photos)],
            storage_bytes=2 * PHOTO,
            end_time=10.0,
        )
        sim.run()
        assert sim.nodes[1].storage.photo_ids() == [photos[0].photo_id, photos[1].photo_id]

    def test_rejects_bad_copies(self):
        with pytest.raises(ValueError):
            SprayAndWaitScheme(initial_copies=0)


class TestModifiedSpray:
    def test_transmit_order_by_individual_coverage(self):
        """Under a tight budget only the higher-coverage photo moves."""
        useless = make_photo(9000.0, 9000.0, 0.0)
        useful = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            ModifiedSprayScheme(initial_copies=4),
            contacts=[(100.0, 1, 2, 2.0)],  # 4 MB budget: one photo
            arrivals=[arrival(0.0, 1, useless), arrival(1.0, 1, useful)],
            unlimited=False,
        )
        sim.run()
        assert useful.photo_id in sim.nodes[2].storage
        assert useless.photo_id not in sim.nodes[2].storage

    def test_eviction_replaces_lower_coverage(self):
        useless = make_photo(9000.0, 9000.0, 0.0)
        useful = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            ModifiedSprayScheme(),
            contacts=[],
            arrivals=[arrival(0.0, 1, useless), arrival(1.0, 1, useful)],
            storage_bytes=1 * PHOTO,
            end_time=10.0,
        )
        sim.run()
        assert sim.nodes[1].storage.photo_ids() == [useful.photo_id]

    def test_does_not_evict_equal_coverage(self):
        a = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        b = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            ModifiedSprayScheme(),
            contacts=[],
            arrivals=[arrival(0.0, 1, a), arrival(1.0, 1, b)],
            storage_bytes=1 * PHOTO,
            end_time=10.0,
        )
        sim.run()
        assert sim.nodes[1].storage.photo_ids() == [a.photo_id]

    def test_still_ignores_overlap(self):
        """ModifiedSpray's blind spot: near-duplicates both rank high."""
        poi = Point(0.0, 0.0)
        dup1 = photo_at_aspect(poi, aspect_deg=0.0)
        dup2 = photo_at_aspect(poi, aspect_deg=1.0)
        fresh = make_photo(9000.0, 9000.0, 0.0)
        sim = build_sim(
            ModifiedSprayScheme(),
            contacts=[(100.0, 0, 1, 4.0)],  # budget: two photos
            arrivals=[arrival(0.0, 1, dup1), arrival(1.0, 1, dup2), arrival(2.0, 1, fresh)],
            unlimited=False,
        )
        result = sim.run()
        # Both near-duplicates get delivered before the junk photo -- the
        # utility metric never discounts the second for overlapping.
        delivered = {p.photo_id for p in sim.command_center.photos()}
        assert delivered == {dup1.photo_id, dup2.photo_id}


class TestBestPossible:
    def test_replicates_and_delivers_everything_useful(self):
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=float(d * 40)) for d in range(3)]
        contacts = [(100.0, 1, 2, 60.0), (200.0, 2, 3, 60.0), (300.0, 0, 3, 60.0)]
        sim = build_sim(
            BestPossibleScheme(),
            contacts=contacts,
            arrivals=[arrival(0.0, 1, p) for p in photos],
        )
        result = sim.run()
        assert result.delivered_photos == 3

    def test_ignores_useless_photos(self):
        useless = make_photo(9000.0, 9000.0, 0.0)
        sim = build_sim(
            BestPossibleScheme(),
            contacts=[(100.0, 0, 1, 60.0)],
            arrivals=[arrival(0.0, 1, useless)],
        )
        result = sim.run()
        assert result.delivered_photos == 0

    def test_causality_respected(self):
        """A photo created after the only uplink never reaches the CC."""
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = build_sim(
            BestPossibleScheme(),
            contacts=[(100.0, 0, 1, 60.0)],
            arrivals=[arrival(200.0, 1, photo)],
            end_time=300.0,
        )
        result = sim.run()
        assert result.delivered_photos == 0


class TestPhotoNet:
    def test_features_deterministic(self):
        photo = make_photo(100.0, 200.0, 0.0, taken_at=3600.0)
        a = photo_features(photo, 6300.0, 86400.0)
        b = photo_features(photo, 6300.0, 86400.0)
        assert a == b
        assert len(a) == 6

    def test_explicit_features_respected(self):
        from repro.core.metadata import Photo

        base = make_photo(0.0, 0.0, 0.0)
        photo = Photo(metadata=base.metadata, features=(0.1, 0.2, 0.3))
        feats = photo_features(photo, 6300.0, 86400.0)
        assert feats[3:] == (0.1, 0.2, 0.3)

    def test_prefers_spatially_diverse(self):
        """Under a 1-photo budget PhotoNet sends the far-away photo."""
        anchor = make_photo(0.0, 0.0, 0.0)
        near = make_photo(10.0, 0.0, 0.0)
        far = make_photo(5000.0, 5000.0, 0.0)
        sim = build_sim(
            PhotoNetScheme(),
            contacts=[(100.0, 1, 2, 600.0), (200.0, 1, 2, 2.0)],
            arrivals=[arrival(0.0, 2, anchor), arrival(0.0, 1, near), arrival(0.0, 1, far)],
            unlimited=False,
        )
        # First contact (600 s) moves everything; re-create tighter setup:
        sim2 = build_sim(
            PhotoNetScheme(),
            contacts=[(100.0, 1, 2, 2.0)],  # 4 MB: exactly one photo
            arrivals=[arrival(0.0, 2, anchor), arrival(0.0, 1, near), arrival(0.0, 1, far)],
            unlimited=False,
        )
        sim2.run()
        assert far.photo_id in sim2.nodes[2].storage
        assert near.photo_id not in sim2.nodes[2].storage

    def test_eviction_drops_closest_pair_member(self):
        a = make_photo(0.0, 0.0, 0.0)
        b = make_photo(1.0, 0.0, 0.0)  # near-duplicate of a
        c = make_photo(5000.0, 5000.0, 0.0)
        sim = build_sim(
            PhotoNetScheme(),
            contacts=[],
            arrivals=[arrival(0.0, 1, a), arrival(1.0, 1, b), arrival(2.0, 1, c)],
            storage_bytes=2 * PHOTO,
            end_time=10.0,
        )
        sim.run()
        held = set(sim.nodes[1].storage.photo_ids())
        assert c.photo_id in held
        assert len(held & {a.photo_id, b.photo_id}) == 1

    def test_delivers_by_diversity_not_coverage(self):
        """PhotoNet wastes the uplink on a spatially-far junk photo.

        The first uplink seeds the command center with an arbitrary photo
        (the anchor, near the covering one); the second uplink then picks
        by diversity -- the far-away junk photo beats the second covering
        shot, which is exactly the failure mode Fig. 3 shows.
        """
        anchor = make_photo(10.0, 10.0, 90.0)  # created first: delivered first
        covering = photo_at_aspect(Point(0.0, 0.0), aspect_deg=180.0)
        junk_far = make_photo(6000.0, 6000.0, 0.0, taken_at=0.0)
        sim = build_sim(
            PhotoNetScheme(),
            contacts=[(100.0, 0, 1, 2.0), (200.0, 0, 1, 2.0)],  # 1 photo each
            arrivals=[
                arrival(0.0, 1, anchor),
                arrival(0.0, 1, covering),
                arrival(0.0, 1, junk_far),
            ],
            unlimited=False,
        )
        sim.run()
        delivered = {p.photo_id for p in sim.command_center.photos()}
        assert junk_far.photo_id in delivered
        assert covering.photo_id not in delivered

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PhotoNetScheme(region_scale=0.0)
