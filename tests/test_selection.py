"""Tests for the greedy photo selection / reallocation algorithm."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import CoverageValue
from repro.core.coverage_index import CoverageIndex
from repro.core.expected_coverage import build_node_profile
from repro.core.exhaustive import evaluate_allocation, optimal_reallocation
from repro.core.geometry import Point
from repro.core.poi import PoIList
from repro.core.selection import (
    NodeSelection,
    StorageSpec,
    greedy_reallocate,
    greedy_select,
)

from helpers import MB, make_photo, photo_at_aspect

THETA = math.radians(30.0)


def index_for(points):
    return CoverageIndex(PoIList.from_points(points), effective_angle=THETA)


class TestStorageSpec:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            StorageSpec(1, -5, 0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            StorageSpec(1, 100, 1.5)

    def test_unlimited_capacity_allowed(self):
        assert StorageSpec(1, None, 0.5).capacity_bytes is None


class TestGreedySelect:
    def test_prefers_covering_photos(self):
        index = index_for([Point(0.0, 0.0)])
        useful = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        useless = make_photo(5000.0, 5000.0, 0.0)
        selection = greedy_select(
            index, [useless, useful], StorageSpec(1, 100 * MB, 0.9), []
        )
        assert selection.photos == [useful]

    def test_respects_storage_budget(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=d) for d in (0.0, 90.0, 180.0, 270.0)
        ]
        selection = greedy_select(index, photos, StorageSpec(1, 2 * 4 * MB, 0.9), [])
        assert len(selection.photos) == 2
        assert selection.total_bytes <= 2 * 4 * MB

    def test_stops_when_no_positive_gain(self):
        index = index_for([Point(0.0, 0.0)])
        # Two identical-aspect photos: the second adds nothing.
        photos = [
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0),
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0),
        ]
        selection = greedy_select(index, photos, StorageSpec(1, 100 * MB, 0.9), [])
        assert len(selection.photos) == 1

    def test_picks_diverse_aspects_first(self):
        index = index_for([Point(0.0, 0.0)])
        base = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        near = photo_at_aspect(Point(0.0, 0.0), aspect_deg=20.0)  # mostly overlaps
        far = photo_at_aspect(Point(0.0, 0.0), aspect_deg=180.0)  # disjoint
        selection = greedy_select(
            index, [base, near, far], StorageSpec(1, 2 * 4 * MB, 0.9), []
        )
        assert far in selection.photos
        assert near not in selection.photos

    def test_gains_recorded_and_positive(self):
        index = index_for([Point(0.0, 0.0), Point(400.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0),
            photo_at_aspect(Point(400.0, 0.0), aspect_deg=90.0),
        ]
        selection = greedy_select(index, photos, StorageSpec(1, 100 * MB, 0.9), [])
        assert len(selection.gains) == len(selection.photos) == 2
        for gain in selection.gains:
            assert gain.is_positive()

    def test_total_gain_equals_expected_coverage(self):
        """Sum of greedy marginal gains telescopes to the selection's E[C]."""
        index = index_for([Point(0.0, 0.0), Point(400.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=d) for d in (0.0, 90.0, 180.0)
        ]
        p = 0.6
        selection = greedy_select(index, photos, StorageSpec(1, 100 * MB, p), [])
        from repro.core.expected_coverage import expected_coverage

        batch = expected_coverage(
            index, [build_node_profile(index, 1, selection.photos, p)]
        )
        assert selection.total_gain.isclose(batch)

    def test_background_suppresses_redundant(self):
        index = index_for([Point(0.0, 0.0)])
        covered = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        background = [build_node_profile(index, 0, [covered], 1.0)]
        duplicate = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        fresh = photo_at_aspect(Point(0.0, 0.0), aspect_deg=180.0)
        selection = greedy_select(
            index, [duplicate, fresh], StorageSpec(1, 100 * MB, 0.9), background
        )
        assert selection.photos == [fresh]

    def test_zero_capacity_selects_nothing(self):
        index = index_for([Point(0.0, 0.0)])
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)]
        selection = greedy_select(index, photos, StorageSpec(1, 0, 0.9), [])
        assert selection.photos == []

    def test_empty_pool(self):
        index = index_for([Point(0.0, 0.0)])
        selection = greedy_select(index, [], StorageSpec(1, 100 * MB, 0.9), [])
        assert selection.photos == []
        assert selection.total_gain == CoverageValue.ZERO

    def test_deterministic_tie_break_by_photo_id(self):
        index = index_for([Point(0.0, 0.0)])
        a = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        b = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        lower_id_first = min(a, b, key=lambda p: p.photo_id)
        selection = greedy_select(index, [b, a], StorageSpec(1, 4 * MB, 0.9), [])
        assert selection.photos == [lower_id_first]


class TestGreedyReallocate:
    def test_higher_probability_node_selects_first(self):
        index = index_for([Point(0.0, 0.0)])
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        result = greedy_reallocate(
            index,
            [photo],
            [],
            StorageSpec(1, 100 * MB, 0.2),
            StorageSpec(2, 100 * MB, 0.8),
        )
        assert result.first.node_id == 2
        assert result.second.node_id == 1

    def test_second_node_avoids_first_selection_when_p_high(self):
        index = index_for([Point(0.0, 0.0)])
        a = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        b = photo_at_aspect(Point(0.0, 0.0), aspect_deg=5.0)  # near-duplicate
        result = greedy_reallocate(
            index,
            [a],
            [b],
            StorageSpec(1, 100 * MB, 1.0),  # first node certainly delivers
            StorageSpec(2, 100 * MB, 0.3),
        )
        # First (p=1.0) takes both: even the near-duplicate adds a 5-degree
        # sliver of aspect.  With everything then certainly delivered, the
        # second node has nothing left to gain.
        assert len(result.first.photos) == 2
        assert result.second.photos == []

    def test_both_select_same_photo_when_first_unreliable(self):
        """The paper's y_j = z_j = 1 case: valuable photo, low p_a."""
        index = index_for([Point(0.0, 0.0)])
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        result = greedy_reallocate(
            index,
            [photo],
            [],
            StorageSpec(1, 100 * MB, 0.1),
            StorageSpec(2, 100 * MB, 0.05),
        )
        assert photo in result.first.photos
        assert photo in result.second.photos

    def test_pool_deduplicates_shared_photos(self):
        index = index_for([Point(0.0, 0.0)])
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        result = greedy_reallocate(
            index,
            [photo],
            [photo],
            StorageSpec(1, 100 * MB, 0.5),
            StorageSpec(2, 100 * MB, 0.4),
        )
        assert result.first.photos.count(photo) == 1

    def test_selection_for_lookup(self):
        index = index_for([Point(0.0, 0.0)])
        result = greedy_reallocate(
            index, [], [], StorageSpec(1, MB, 0.5), StorageSpec(2, MB, 0.4)
        )
        assert result.selection_for(1).node_id == 1
        assert result.selection_for(2).node_id == 2
        with pytest.raises(KeyError):
            result.selection_for(3)


class TestGreedyVersusOptimal:
    def test_greedy_never_beats_optimal(self):
        index = index_for([Point(0.0, 0.0), Point(400.0, 0.0)])
        photos = [
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0),
            photo_at_aspect(Point(0.0, 0.0), aspect_deg=90.0),
            photo_at_aspect(Point(400.0, 0.0), aspect_deg=180.0),
        ]
        spec_a = StorageSpec(1, 2 * 4 * MB, 0.8)
        spec_b = StorageSpec(2, 4 * MB, 0.3)
        optimal_value, _ = optimal_reallocation(index, photos, spec_a, spec_b)
        result = greedy_reallocate(index, photos, [], spec_a, spec_b)
        placement = []
        first_ids = result.first.photo_ids()
        second_ids = result.second.photo_ids()
        for photo in photos:
            placement.append((photo.photo_id in first_ids, photo.photo_id in second_ids))
        # NOTE: greedy put the higher-p node first; map back to (a, b).
        if result.first.node_id == 2:
            placement = [(b, a) for a, b in placement]
        greedy_value = evaluate_allocation(index, photos, placement, spec_a, spec_b)
        assert greedy_value is not None  # greedy result must be feasible
        assert greedy_value <= optimal_value or greedy_value.isclose(optimal_value)

    @given(
        st.lists(st.floats(0.0, 360.0), min_size=1, max_size=4),
        st.floats(0.1, 1.0),
        st.floats(0.1, 1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_feasible_and_bounded_randomized(self, aspect_list, pa, pb):
        index = index_for([Point(0.0, 0.0)])
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=a) for a in aspect_list]
        spec_a = StorageSpec(1, 2 * 4 * MB, pa)
        spec_b = StorageSpec(2, 4 * MB, pb)
        optimal_value, _ = optimal_reallocation(index, photos, spec_a, spec_b)
        result = greedy_reallocate(index, photos, [], spec_a, spec_b)
        for selection, spec in (
            (result.selection_for(1), spec_a),
            (result.selection_for(2), spec_b),
        ):
            assert selection.total_bytes <= spec.capacity_bytes
        placement = [
            (
                photo.photo_id in result.selection_for(1).photo_ids(),
                photo.photo_id in result.selection_for(2).photo_ids(),
            )
            for photo in photos
        ]
        greedy_value = evaluate_allocation(index, photos, placement, spec_a, spec_b)
        assert greedy_value is not None
        assert greedy_value <= optimal_value or greedy_value.isclose(optimal_value)
