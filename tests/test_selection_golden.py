"""Golden selection: the seed-0 scenario's greedy outcome is pinned.

The differential and equivalence suites check that evaluators agree with
*each other*; this suite checks they agree with *yesterday* -- an absolute
regression anchor like ``tests/golden/metrics.prom``.  The golden file
stores, per backend, the selected photos' **pool indices** (photo ids are
a process-global counter and differ between runs) in greedy order plus
the per-step gains.  Backends are pinned separately: their per-query
gains agree to machine epsilon, but a floating-point tie can break
differently, after which the two equally-valid greedy trajectories
diverge.

Regenerate after an intentional algorithm change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_selection_golden.py
"""

from __future__ import annotations

import json
import math
import os
import random
from pathlib import Path

import pytest

from repro.core import backend
from repro.core.angular import AngularInterval, ArcSet
from repro.core.coverage_index import CoverageIndex
from repro.core.expected_coverage import build_node_profile
from repro.core.geometry import Point
from repro.core.poi import PoI, PoIList
from repro.core.selection import StorageSpec, greedy_select

from helpers import MB, photo_at_aspect

GOLDEN_PATH = Path(__file__).parent / "golden" / "selection_seed0.json"

BACKENDS = ["python"] + (["numpy"] if backend.numpy_available() else [])


def _scenario():
    """The pinned seed-0 scenario: fixed PoIs (one aspect-restricted),
    a 40-photo pool, four background nodes, an 8-photo budget."""
    rng = random.Random(0)
    pois = PoIList(
        [
            PoI(location=Point(0.0, 0.0)),
            PoI(location=Point(500.0, 0.0), weight=2.0),
            PoI(
                location=Point(0.0, 500.0),
                important_aspects=ArcSet([AngularInterval.around(1.0, 1.2)]),
            ),
        ]
    )
    index = CoverageIndex(pois, effective_angle=math.radians(30.0))
    points = [poi.location for poi in pois]
    pool = [
        photo_at_aspect(rng.choice(points), rng.uniform(0.0, 360.0))
        for _ in range(40)
    ]
    background = [
        build_node_profile(
            index,
            100 + node,
            [photo_at_aspect(rng.choice(points), rng.uniform(0.0, 360.0)) for _ in range(5)],
            rng.uniform(0.2, 0.9),
        )
        for node in range(4)
    ]
    storage = StorageSpec(node_id=1, capacity_bytes=8 * 4 * MB, delivery_probability=0.7)
    return index, pool, background, storage


def _run(backend_name: str):
    index, pool, background, storage = _scenario()
    index_of = {photo.photo_id: i for i, photo in enumerate(pool)}
    with backend.use_backend(backend_name):
        selection = greedy_select(index, pool, storage, background)
    return {
        "pool_indices": [index_of[photo.photo_id] for photo in selection.photos],
        "gains": [[gain.point, gain.aspect] for gain in selection.gains],
    }


def _regen_requested() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_selection_matches_golden(backend_name):
    result = _run(backend_name)
    assert result["pool_indices"], "the pinned scenario must select something"

    if _regen_requested():
        recorded = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        recorded[backend_name] = result
        GOLDEN_PATH.write_text(json.dumps(recorded, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}[{backend_name}]")

    recorded = json.loads(GOLDEN_PATH.read_text())
    assert backend_name in recorded, (
        f"no golden entry for backend {backend_name!r}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    want = recorded[backend_name]
    assert result["pool_indices"] == want["pool_indices"]
    assert len(result["gains"]) == len(want["gains"])
    for got, expected in zip(result["gains"], want["gains"]):
        assert got[0] == pytest.approx(expected[0], rel=1e-9, abs=1e-12)
        assert got[1] == pytest.approx(expected[1], rel=1e-9, abs=1e-12)


def test_golden_backends_agree_on_totals():
    """Trajectories may tie-break apart; realized totals must stay close."""
    recorded = json.loads(GOLDEN_PATH.read_text())
    totals = {
        name: [sum(g[0] for g in entry["gains"]), sum(g[1] for g in entry["gains"])]
        for name, entry in recorded.items()
    }
    reference = totals.get("python")
    assert reference is not None
    for name, total in totals.items():
        assert total[0] == pytest.approx(reference[0], rel=5e-2)
        assert total[1] == pytest.approx(reference[1], rel=5e-2)
