"""CELF lazy-greedy must be *byte-identical* to naive evaluate-all greedy.

:func:`repro.core.selection.greedy_select` prunes gain evaluations with a
stale-tolerant max-heap; :func:`greedy_select_reference` re-evaluates every
remaining candidate each round against a freshly rebuilt evaluator.
Submodularity makes the two pick the same argmax at every step, and the
backend contract (scalar, batched, and rebuilt-profile gain queries all
bitwise equal within one configuration) makes the agreement exact: same
photo order, same gain floats -- across backends, strategies, fault-
perturbed pools, and with telemetry on or off.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import backend
from repro.core.coverage_index import CoverageIndex
from repro.core.expected_coverage import build_node_profile
from repro.core.geometry import Point
from repro.core.poi import PoIList
from repro.core.selection import StorageSpec, greedy_select, greedy_select_reference
from repro.dtn.faults import FaultInjector, FaultPlan
from repro.obs import SimTelemetry
from repro.obs.runtime import activated

from helpers import MB, photo_at_aspect

THETA = math.radians(30.0)
POIS = [Point(0.0, 0.0), Point(500.0, 0.0), Point(0.0, 500.0), Point(500.0, 500.0)]

BACKENDS = ["python"] + (["numpy"] if backend.numpy_available() else [])
STRATEGIES = ["incremental", "rebuild"]


def _scenario(seed: int, pool_size: int = 60, m: int = 5):
    rng = random.Random(seed)
    index = CoverageIndex(PoIList.from_points(POIS), effective_angle=THETA)
    pool = [
        photo_at_aspect(rng.choice(POIS), rng.uniform(0.0, 360.0))
        for _ in range(pool_size)
    ]
    background = [
        build_node_profile(
            index,
            100 + node,
            [photo_at_aspect(rng.choice(POIS), rng.uniform(0.0, 360.0)) for _ in range(6)],
            rng.uniform(0.2, 0.9),
        )
        for node in range(m)
    ]
    storage = StorageSpec(
        node_id=1, capacity_bytes=10 * 4 * MB, delivery_probability=rng.uniform(0.3, 0.95)
    )
    return index, pool, background, storage


def _assert_byte_identical(lazy, naive):
    assert [p.photo_id for p in lazy.photos] == [p.photo_id for p in naive.photos]
    assert len(lazy.gains) == len(naive.gains)
    for a, b in zip(lazy.gains, naive.gains):
        # Bitwise float equality, not approx: both paths must compute the
        # exact same gain for the photo they commit.
        assert a.point == b.point
        assert a.aspect == b.aspect


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", range(4))
def test_celf_equals_naive_greedy(monkeypatch, backend_name, strategy, seed):
    monkeypatch.setenv(backend.STRATEGY_ENV, strategy)
    index, pool, background, storage = _scenario(seed)
    with backend.use_backend(backend_name):
        lazy = greedy_select(index, pool, storage, background)
        naive = greedy_select_reference(
            index, pool, storage, background, strategy=strategy, backend=backend_name
        )
    _assert_byte_identical(lazy, naive)
    assert lazy.photos, "scenario must actually select something"


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("intensity", [0.3, 0.6])
def test_celf_equals_naive_on_fault_perturbed_pools(backend_name, intensity):
    """Fault-injected pools (dropped photos) preserve the equivalence."""
    index, pool, background, storage = _scenario(seed=99, pool_size=80)
    injector = FaultInjector(FaultPlan.scaled(intensity, seed=7))
    perturbed = injector.surviving_photos(pool)
    assert perturbed, "fault plan must leave a non-empty pool"
    with backend.use_backend(backend_name):
        lazy = greedy_select(index, perturbed, storage, background)
        naive = greedy_select_reference(
            index, perturbed, storage, background, backend=backend_name
        )
    _assert_byte_identical(lazy, naive)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_telemetry_does_not_change_selection(backend_name):
    index, pool, background, storage = _scenario(seed=5)
    with backend.use_backend(backend_name):
        plain = greedy_select(index, pool, storage, background)
        telemetry = SimTelemetry()
        with activated(telemetry):
            observed = greedy_select(index, pool, storage, background)
            observed_naive = greedy_select_reference(
                index, pool, storage, background, backend=backend_name
            )
    _assert_byte_identical(plain, observed)
    _assert_byte_identical(plain, observed_naive)
    # The hooks really fired: per-configuration evaluator counter and the
    # gain-evaluation tally are both non-zero.
    snapshot = telemetry.registry.snapshot()
    evaluators = snapshot["repro_selection_evaluator_total"]["samples"]
    assert sum(s["value"] for s in evaluators) == 2.0
    assert {s["labels"]["strategy"] for s in evaluators} >= {"reference"}
    gain_evals = snapshot["repro_selection_gain_evaluations_total"]["samples"]
    assert gain_evals[0]["value"] > 0


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_zero_capacity_and_zero_probability_edges(backend_name):
    index, pool, background, _ = _scenario(seed=11, pool_size=30)
    empty = StorageSpec(node_id=1, capacity_bytes=0, delivery_probability=0.5)
    hopeless = StorageSpec(node_id=1, capacity_bytes=40 * MB, delivery_probability=0.0)
    with backend.use_backend(backend_name):
        for storage in (empty, hopeless):
            lazy = greedy_select(index, pool, storage, background)
            naive = greedy_select_reference(
                index, pool, storage, background, backend=backend_name
            )
            _assert_byte_identical(lazy, naive)
            assert lazy.photos == []
