"""Tests for the seed-sensitivity statistics."""

from __future__ import annotations

import pytest

from repro.experiments.config import ScenarioSpec
from repro.experiments.sensitivity import paired_comparison, seed_sensitivity

SPEC = ScenarioSpec(scale=0.08, seed=0)


class TestSeedSensitivity:
    @pytest.fixture(scope="class")
    def statistics(self):
        return seed_sensitivity(SPEC, ("our-scheme", "spray-and-wait"), num_seeds=3)

    def test_shape(self, statistics):
        assert set(statistics) == {"our-scheme", "spray-and-wait"}
        for stat in statistics.values():
            assert stat.num_seeds == 3
            assert stat.ci_low <= stat.mean <= stat.ci_high
            assert stat.std >= 0.0
            assert stat.ci_half_width >= 0.0

    def test_metric_selection(self):
        stats_delivered = seed_sensitivity(
            SPEC, ("our-scheme",), num_seeds=2, metric="delivered"
        )
        assert stats_delivered["our-scheme"].mean >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            seed_sensitivity(SPEC, ("our-scheme",), num_seeds=1)
        with pytest.raises(ValueError):
            seed_sensitivity(SPEC, ("our-scheme",), num_seeds=2, confidence=1.5)
        with pytest.raises(ValueError):
            seed_sensitivity(SPEC, ("our-scheme",), num_seeds=2, metric="bogus")


class TestPairedComparison:
    def test_ours_vs_spray(self):
        comparison = paired_comparison(
            SPEC, "our-scheme", "spray-and-wait", num_seeds=3, metric="aspect"
        )
        assert comparison.scheme_a == "our-scheme"
        # Ours never loses on aspect coverage on these scenarios.
        assert comparison.mean_difference >= 0.0
        assert 0.0 <= comparison.p_value <= 1.0

    def test_self_comparison_is_null(self):
        comparison = paired_comparison(SPEC, "our-scheme", "our-scheme", num_seeds=2)
        assert comparison.mean_difference == 0.0
        assert comparison.p_value == 1.0
        assert not comparison.a_significantly_better()
