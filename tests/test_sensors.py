"""Tests for the sensor substrate: IMU simulation, fusion, GPS, capture.

The headline claim to reproduce from Section IV-A: the fused orientation
estimate has a maximum error of about five degrees.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.angular import angle_difference
from repro.core.geometry import Point
from repro.sensors.camera import CameraSpec, MetadataAcquisition
from repro.sensors.gps import GpsSimulator
from repro.sensors.imu import GEOMAGNETIC_FIELD, GRAVITY, ImuReading, ImuSimulator, rotation_about_z
from repro.sensors.orientation import (
    OrientationFilter,
    attitude_from_accel_mag,
    camera_azimuth,
    integrate_gyroscope,
    orthonormalize,
)


def reference_attitude(azimuth: float) -> np.ndarray:
    """Level camera pointing *azimuth* clockwise from east."""
    base = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    return rotation_about_z(-azimuth) @ base


class TestImuSimulator:
    def test_noiseless_accelerometer_measures_gravity(self):
        imu = ImuSimulator(accel_noise_std=0.0, mag_noise_std=0.0, gyro_noise_std=0.0,
                           gyro_bias_std=0.0, seed=0)
        reading = imu.read(np.eye(3), np.zeros(3), 0.0)
        np.testing.assert_allclose(reading.accelerometer, [0.0, 0.0, GRAVITY], atol=1e-9)
        np.testing.assert_allclose(reading.magnetometer, GEOMAGNETIC_FIELD, atol=1e-9)

    def test_rotated_device_sees_rotated_field(self):
        imu = ImuSimulator(accel_noise_std=0.0, mag_noise_std=0.0, gyro_noise_std=0.0,
                           gyro_bias_std=0.0, seed=0)
        attitude = rotation_about_z(math.pi / 2)
        reading = imu.read(attitude, np.zeros(3), 0.0)
        expected = attitude.T @ GEOMAGNETIC_FIELD
        np.testing.assert_allclose(reading.magnetometer, expected, atol=1e-9)

    def test_bias_is_constant_per_instance(self):
        imu = ImuSimulator(gyro_noise_std=0.0, seed=3)
        r1 = imu.read(np.eye(3), np.zeros(3), 0.0)
        r2 = imu.read(np.eye(3), np.zeros(3), 1.0)
        np.testing.assert_allclose(r1.gyroscope, r2.gyroscope, atol=1e-12)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ImuSimulator().read(np.eye(2), np.zeros(3), 0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            ImuSimulator(accel_noise_std=-1.0)


class TestTriad:
    def test_recovers_identity_attitude(self):
        estimated = attitude_from_accel_mag((0.0, 0.0, GRAVITY), tuple(GEOMAGNETIC_FIELD))
        np.testing.assert_allclose(estimated, np.eye(3), atol=1e-9)

    def test_recovers_arbitrary_yaw(self):
        for azimuth in (0.3, 1.5, 3.0, 5.5):
            attitude = reference_attitude(azimuth)
            accel = attitude.T @ np.array([0.0, 0.0, GRAVITY])
            mag = attitude.T @ GEOMAGNETIC_FIELD
            estimated = attitude_from_accel_mag(tuple(accel), tuple(mag))
            np.testing.assert_allclose(estimated, attitude, atol=1e-9)

    def test_free_fall_rejected(self):
        with pytest.raises(ValueError):
            attitude_from_accel_mag((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))

    def test_parallel_field_rejected(self):
        with pytest.raises(ValueError):
            attitude_from_accel_mag((0.0, 0.0, 9.8), (0.0, 0.0, 42.0))


class TestGyroIntegration:
    def test_zero_rate_is_identity(self):
        attitude = reference_attitude(1.0)
        np.testing.assert_allclose(
            integrate_gyroscope(attitude, (0.0, 0.0, 0.0), 1.0), attitude
        )

    def test_integrates_known_rotation(self):
        # Spin about the device y (up, for the level reference) axis.
        attitude = reference_attitude(0.0)
        rate_world = np.array([0.0, 0.0, -0.5])  # clockwise seen from above
        rate_device = attitude.T @ rate_world
        advanced = integrate_gyroscope(attitude, tuple(rate_device), 1.0)
        expected = reference_attitude(0.5)
        np.testing.assert_allclose(advanced, expected, atol=1e-9)

    def test_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            integrate_gyroscope(np.eye(3), (0.0, 0.0, 1.0), -1.0)


class TestOrthonormalize:
    def test_fixes_scaled_matrix(self):
        rotation = rotation_about_z(0.7)
        fixed = orthonormalize(1.1 * rotation)
        np.testing.assert_allclose(fixed, rotation, atol=1e-9)

    def test_output_is_rotation(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            noisy = rotation_about_z(rng.uniform(0, 6)) + rng.normal(0, 0.1, (3, 3))
            fixed = orthonormalize(noisy)
            np.testing.assert_allclose(fixed @ fixed.T, np.eye(3), atol=1e-9)
            assert np.linalg.det(fixed) == pytest.approx(1.0)


class TestCameraAzimuth:
    def test_reference_points_east(self):
        assert camera_azimuth(reference_attitude(0.0)) == pytest.approx(0.0, abs=1e-9)

    def test_azimuth_roundtrip(self):
        for azimuth in (0.5, 2.0, 4.5):
            assert camera_azimuth(reference_attitude(azimuth)) == pytest.approx(azimuth)

    def test_vertical_camera_rejected(self):
        vertical = np.eye(3)  # device z == world z: camera points straight up
        with pytest.raises(ValueError):
            camera_azimuth(vertical)


class TestOrientationFilter:
    def test_paper_accuracy_bound_static_hold(self):
        """Fused azimuth error stays within ~5 degrees (Section IV-A)."""
        acquisition = MetadataAcquisition()
        worst = 0.0
        for true_azimuth in np.linspace(0.0, 2 * math.pi, 12, endpoint=False):
            measured = acquisition.measure_orientation(float(true_azimuth))
            worst = max(worst, angle_difference(measured, float(true_azimuth)))
        assert math.degrees(worst) <= 5.0

    def test_fusion_beats_gyro_only_under_bias(self):
        """Gyro-only drifts with bias; the acc/mag blend stays anchored."""
        imu = ImuSimulator(accel_noise_std=0.1, mag_noise_std=1.0,
                           gyro_noise_std=0.01, gyro_bias_std=0.05, seed=1)
        true_attitude = reference_attitude(1.0)
        fused = OrientationFilter(blend=0.05)
        gyro_only = OrientationFilter(blend=0.0)
        for k in range(400):
            reading = imu.read(true_attitude, np.zeros(3), k * 0.02)
            fused.update(reading)
            gyro_only.update(reading)
        fused_error = angle_difference(fused.azimuth(), 1.0)
        gyro_error = angle_difference(gyro_only.azimuth(), 1.0)
        assert fused_error < gyro_error

    def test_tracks_rotation(self):
        imu = ImuSimulator(accel_noise_std=0.05, mag_noise_std=0.5,
                           gyro_noise_std=0.005, gyro_bias_std=0.0, seed=2)
        fusion = OrientationFilter(blend=0.05)
        rate = -0.2  # clockwise rad/s about up
        dt = 0.02
        azimuth = 0.0
        for k in range(500):
            attitude = reference_attitude(azimuth)
            reading = imu.read(attitude, np.array([0.0, 0.0, rate]), k * dt)
            fusion.update(reading)
            azimuth = (azimuth - rate * dt) % (2 * math.pi)
        assert math.degrees(angle_difference(fusion.azimuth(), azimuth)) < 6.0

    def test_rejects_unordered_timestamps(self):
        imu = ImuSimulator(seed=0)
        fusion = OrientationFilter()
        fusion.update(imu.read(reference_attitude(0.0), np.zeros(3), 1.0))
        with pytest.raises(ValueError):
            fusion.update(imu.read(reference_attitude(0.0), np.zeros(3), 0.5))

    def test_azimuth_before_init_rejected(self):
        with pytest.raises(ValueError):
            OrientationFilter().azimuth()

    def test_blend_validation(self):
        with pytest.raises(ValueError):
            OrientationFilter(blend=1.5)


class TestGps:
    def test_zero_cep_is_exact(self):
        gps = GpsSimulator(cep_m=0.0)
        assert gps.fix(Point(10.0, 20.0)) == Point(10.0, 20.0)

    def test_median_error_matches_cep(self):
        gps = GpsSimulator(cep_m=6.5, seed=0)
        truth = Point(0.0, 0.0)
        errors = sorted(gps.fix(truth).distance_to(truth) for _ in range(4000))
        median = errors[len(errors) // 2]
        assert median == pytest.approx(6.5, rel=0.1)

    def test_paper_error_band(self):
        """Most fixes land within the paper's 5-8.5 m tolerable band x2."""
        gps = GpsSimulator(cep_m=6.5, seed=1)
        truth = Point(0.0, 0.0)
        errors = [gps.fix(truth).distance_to(truth) for _ in range(1000)]
        within = sum(1 for e in errors if e <= 17.0) / len(errors)
        assert within > 0.95

    def test_rejects_negative_cep(self):
        with pytest.raises(ValueError):
            GpsSimulator(cep_m=-1.0)


class TestMetadataAcquisition:
    def test_capture_produces_valid_metadata(self):
        acquisition = MetadataAcquisition(camera=CameraSpec(fov_deg=45.0))
        photo = acquisition.capture(Point(100.0, 200.0), true_azimuth=1.0, owner_id=7)
        assert photo.owner_id == 7
        assert photo.metadata.field_of_view == pytest.approx(math.radians(45.0))
        # r = 50 / tan(22.5 deg) ~ 120.7 m.
        assert photo.metadata.coverage_range == pytest.approx(120.7, abs=0.2)
        assert photo.location.distance_to(Point(100.0, 200.0)) < 40.0
        assert math.degrees(angle_difference(photo.metadata.orientation, 1.0)) < 8.0

    def test_camera_spec_validation(self):
        with pytest.raises(ValueError):
            CameraSpec(fov_deg=0.0)
        with pytest.raises(ValueError):
            CameraSpec(range_scale_m=0.0)

    def test_acquisition_validation(self):
        with pytest.raises(ValueError):
            MetadataAcquisition(settle_samples=0)
        with pytest.raises(ValueError):
            MetadataAcquisition(sample_interval_s=0.0)

    def test_true_attitude_roundtrip(self):
        acquisition = MetadataAcquisition()
        for azimuth in (0.0, 1.2, 3.7):
            attitude = acquisition.true_attitude(azimuth)
            assert camera_azimuth(attitude) == pytest.approx(azimuth, abs=1e-9)
