"""Durable service mode: WAL, snapshots, recovery, corruption handling."""

from __future__ import annotations

import json
import os
import pickle
import threading
from contextlib import contextmanager

import pytest

from repro.core.geometry import Point
from repro.core.metadata import Photo, PhotoMetadata
from repro.core.poi import PoIList
from repro.dtn.events import EventKind
from repro.dtn.simulator import Simulation
from repro.experiments.config import ScenarioSpec
from repro.obs.manifest import validate_service_manifest
from repro.routing import create_scheme
from repro.service import (
    PersistenceConfig,
    PersistentSession,
    RecoveryError,
    ServiceSession,
    SnapshotStore,
    WalCorruptionError,
    WriteAheadLog,
)
from repro.service.client import ServiceClient, iter_scenario_events
from repro.service.server import CommandCenterServer


def make_photo(x=10.0, y=10.0, taken_at=0.0, owner_id=1):
    return Photo(
        metadata=PhotoMetadata(
            location=Point(x, y),
            coverage_range=80.0,
            field_of_view=1.0,
            orientation=-0.5,
        ),
        taken_at=taken_at,
        owner_id=owner_id,
    )


@pytest.fixture()
def pois():
    return PoIList.from_points([Point(54.0, 34.0), Point(400.0, 400.0)])


def session_factory(pois):
    def factory():
        return ServiceSession("our-scheme", pois, variant="champion")

    return factory


def feed_events(target, events):
    """Drive ingest/contact events through a session-shaped object."""
    for event in events:
        if event.kind == EventKind.PHOTO_CREATED:
            owner_id, photo = event.payload
            target.ingest(owner_id, photo, event.time)
        else:
            node_a, node_b, duration = event.payload[:3]
            target.contact(node_a, node_b, event.time, duration)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestPersistenceConfig:
    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            PersistenceConfig(wal_dir=tmp_path, fsync="sometimes")

    def test_rejects_negative_snapshot_every(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            PersistenceConfig(wal_dir=tmp_path, snapshot_every=-1)

    def test_rejects_nonpositive_fsync_interval(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_interval_s"):
            PersistenceConfig(wal_dir=tmp_path, fsync_interval_s=0.0)

    def test_describe_round_trips_the_knobs(self, tmp_path):
        config = PersistenceConfig(
            wal_dir=tmp_path, snapshot_every=50, fsync="always"
        )
        summary = config.describe()
        assert summary["snapshot_every"] == 50
        assert summary["fsync"] == "always"
        assert summary["wal_dir"] == str(tmp_path)


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_appends_are_contiguous_and_read_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "champion.wal", fsync="off")
        assert wal.append({"op": "a"}) == 1
        assert wal.append({"op": "b"}) == 2
        wal.close()
        records, torn = WriteAheadLog.read_records(tmp_path / "champion.wal")
        assert torn == 0
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["op"] for r in records] == ["a", "b"]

    def test_torn_tail_is_reported_not_fatal(self, tmp_path):
        path = tmp_path / "champion.wal"
        wal = WriteAheadLog(path, fsync="off")
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        wal.close()
        torn_fragment = b'{"op":"c","se'
        with open(path, "ab") as handle:
            handle.write(torn_fragment)
        records, torn = WriteAheadLog.read_records(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert torn == len(torn_fragment)

    def test_damaged_final_line_with_newline_counts_as_torn(self, tmp_path):
        path = tmp_path / "champion.wal"
        wal = WriteAheadLog(path, fsync="off")
        wal.append({"op": "a"})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"garbage bytes with a newline\n")
        records, torn = WriteAheadLog.read_records(path)
        assert [r["seq"] for r in records] == [1]
        assert torn > 0

    def test_corrupt_middle_record_is_a_hard_error(self, tmp_path):
        path = tmp_path / "champion.wal"
        lines = [
            json.dumps({"op": "a", "seq": 1}),
            "this is not json",
            json.dumps({"op": "c", "seq": 3}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="corrupt record"):
            WriteAheadLog.read_records(path)

    def test_sequence_gap_is_a_hard_error(self, tmp_path):
        path = tmp_path / "champion.wal"
        lines = [
            json.dumps({"op": "a", "seq": 1}),
            json.dumps({"op": "b", "seq": 3}),
            json.dumps({"op": "c", "seq": 4}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="sequence break"):
            WriteAheadLog.read_records(path)

    def test_missing_file_reads_as_empty(self, tmp_path):
        records, torn = WriteAheadLog.read_records(tmp_path / "nope.wal")
        assert records == [] and torn == 0


class TestFsyncPolicies:
    @pytest.fixture()
    def fsync_calls(self, monkeypatch):
        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        return calls

    def test_always_fsyncs_every_append(self, tmp_path, fsync_calls):
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="always")
        wal.open_for_append()
        fsync_calls.clear()
        for i in range(5):
            wal.append({"op": "a", "i": i})
        assert len(fsync_calls) == 5

    def test_off_never_fsyncs_on_append(self, tmp_path, fsync_calls):
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="off")
        wal.open_for_append()
        fsync_calls.clear()
        for i in range(5):
            wal.append({"op": "a", "i": i})
        assert fsync_calls == []
        wal.sync()  # explicit sync works regardless of policy
        assert len(fsync_calls) == 1

    def test_interval_fsyncs_at_most_once_per_window(self, tmp_path, fsync_calls):
        wal = WriteAheadLog(
            tmp_path / "w.wal", fsync="interval", fsync_interval_s=3600.0
        )
        wal.open_for_append()
        fsync_calls.clear()
        for i in range(10):
            wal.append({"op": "a", "i": i})
        assert fsync_calls == []  # the hour hasn't elapsed

    def test_interval_with_elapsed_window_fsyncs(self, tmp_path, fsync_calls):
        wal = WriteAheadLog(
            tmp_path / "w.wal", fsync="interval", fsync_interval_s=1e-9
        )
        wal.open_for_append()
        fsync_calls.clear()
        wal.append({"op": "a"})
        assert len(fsync_calls) == 1


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_round_trips_a_live_session(self, tmp_path, pois):
        session = ServiceSession("our-scheme", pois)
        session.ingest(1, make_photo(owner_id=1), 0.0)
        store = SnapshotStore(tmp_path / "champion.snapshot")
        store.save(7, session)
        loaded = store.load()
        assert loaded is not None
        seq, restored = loaded
        assert seq == 7
        assert restored.coverage().created_photos == 1

    def test_missing_snapshot_loads_as_none(self, tmp_path):
        assert SnapshotStore(tmp_path / "nope.snapshot").load() is None

    def test_corrupt_snapshot_loads_as_none(self, tmp_path):
        path = tmp_path / "champion.snapshot"
        path.write_bytes(b"not a pickle at all")
        assert SnapshotStore(path).load() is None

    def test_wrong_format_version_loads_as_none(self, tmp_path):
        path = tmp_path / "champion.snapshot"
        with open(path, "wb") as handle:
            pickle.dump({"format": 999, "seq": 1, "session": None}, handle)
        assert SnapshotStore(path).load() is None


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


class TestRecovery:
    def test_fresh_directory_recovers_to_an_empty_world(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path)
        ps = PersistentSession(session_factory(pois), config, "champion")
        assert ps.recovery.snapshot_seq == 0
        assert ps.recovery.replayed_records == 0
        assert ps.coverage().created_photos == 0
        ps.close()

    def test_journal_tail_replays_through_the_seam(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        ps.ingest(1, make_photo(owner_id=1), 0.0)
        cc_id = ps.command_center_id
        ps.contact(1, cc_id, 10.0, 600.0)
        before = ps.coverage()
        del ps  # abrupt death: no close, no flush beyond the fsync policy

        recovered = PersistentSession(session_factory(pois), config, "champion")
        assert recovered.recovery.replayed_records == 2
        after = recovered.coverage()
        assert after.point_coverage == before.point_coverage
        assert after.aspect_coverage_deg == before.aspect_coverage_deg
        assert after.delivered_photos == before.delivered_photos
        recovered.close()

    def test_torn_tail_is_truncated_and_appends_continue(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        ps.ingest(1, make_photo(owner_id=1), 0.0)
        ps.ingest(2, make_photo(owner_id=2), 1.0)
        ps.close()
        wal_path = tmp_path / "champion.wal"
        intact_size = wal_path.stat().st_size
        with open(wal_path, "ab") as handle:
            handle.write(b'{"op":"ingest","user":3,"ti')  # mid-record death

        recovered = PersistentSession(session_factory(pois), config, "champion")
        assert recovered.recovery.truncated_bytes > 0
        assert recovered.recovery.replayed_records == 2
        assert wal_path.stat().st_size == intact_size
        assert recovered.coverage().created_photos == 2
        # The next append takes the seq the torn record never committed.
        recovered.ingest(3, make_photo(owner_id=3), 2.0)
        records, torn = WriteAheadLog.read_records(wal_path)
        assert torn == 0
        assert [r["seq"] for r in records] == [1, 2, 3]
        recovered.close()

    def test_corrupt_middle_record_refuses_to_start(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        for i in range(1, 4):
            ps.ingest(i, make_photo(owner_id=i), float(i))
        ps.close()
        wal_path = tmp_path / "champion.wal"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        lines[1] = b"}}corrupted{{\n"
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruptionError):
            PersistentSession(session_factory(pois), config, "champion")

    def test_compacted_journal_without_snapshot_refuses_to_start(
        self, tmp_path, pois
    ):
        config = PersistenceConfig(wal_dir=tmp_path)
        (tmp_path / "champion.wal").write_text(
            json.dumps({"op": "select", "user": 1, "time": 0.0,
                        "duration": 1.0, "seq": 5}) + "\n"
        )
        with pytest.raises(RecoveryError, match="already compacted"):
            PersistentSession(session_factory(pois), config, "champion")

    def test_snapshot_journal_seq_gap_refuses_to_start(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path)
        session = ServiceSession("our-scheme", pois)
        SnapshotStore(tmp_path / "champion.snapshot").save(5, session)
        (tmp_path / "champion.wal").write_text(
            json.dumps({"op": "select", "user": 1, "time": 0.0,
                        "duration": 1.0, "seq": 8}) + "\n"
        )
        with pytest.raises(RecoveryError, match="missing"):
            PersistentSession(session_factory(pois), config, "champion")

    def test_unknown_op_in_journal_refuses_to_start(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path)
        (tmp_path / "champion.wal").write_text(
            json.dumps({"op": "frobnicate", "seq": 1}) + "\n"
        )
        with pytest.raises(WalCorruptionError, match="unknown op"):
            PersistentSession(session_factory(pois), config, "champion")

    def test_failed_requests_replay_deterministically(self, tmp_path, pois):
        # A journaled request that *raised* (stale time) must not break
        # replay: the same error recurs and leaves state untouched.
        config = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        ps.ingest(1, make_photo(owner_id=1), 100.0)
        with pytest.raises(ValueError):
            ps.ingest(1, make_photo(owner_id=1), 50.0)  # stale: journaled, raised
        before = ps.coverage()
        del ps
        recovered = PersistentSession(session_factory(pois), config, "champion")
        assert recovered.recovery.replayed_records == 2
        assert recovered.coverage().created_photos == before.created_photos
        recovered.close()


class TestSnapshotCompaction:
    def test_snapshot_truncates_the_journal(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path, snapshot_every=3)
        ps = PersistentSession(session_factory(pois), config, "champion")
        for i in range(1, 5):
            ps.ingest(i, make_photo(owner_id=i), float(i))
        assert ps.snapshot_seq == 3
        records, _ = WriteAheadLog.read_records(tmp_path / "champion.wal")
        assert [r["seq"] for r in records] == [4]  # 1..3 compacted away
        ps.close()

    def test_recovery_from_snapshot_plus_tail(self, tmp_path, pois):
        config = PersistenceConfig(wal_dir=tmp_path, snapshot_every=3, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        for i in range(1, 6):
            ps.ingest(i, make_photo(owner_id=i), float(i))
        before = ps.coverage()
        del ps
        recovered = PersistentSession(session_factory(pois), config, "champion")
        assert recovered.recovery.snapshot_seq == 3
        assert recovered.recovery.replayed_records == 2
        assert recovered.coverage().created_photos == before.created_photos
        recovered.close()

    def test_crash_between_snapshot_and_truncation_recovers(self, tmp_path, pois):
        # Snapshot at seq N with the journal still holding 1..N (reset
        # never ran): the tail past N is empty and appends continue at
        # N+1 without tripping the contiguity check on the next boot.
        config = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        ps = PersistentSession(session_factory(pois), config, "champion")
        for i in range(1, 4):
            ps.ingest(i, make_photo(owner_id=i), float(i))
        ps.snapshots.save(3, ps.session)
        ps.close()  # journal still holds seq 1..3
        recovered = PersistentSession(session_factory(pois), config, "champion")
        assert recovered.recovery.snapshot_seq == 3
        assert recovered.recovery.replayed_records == 0
        recovered.ingest(4, make_photo(owner_id=4), 4.0)
        records, _ = WriteAheadLog.read_records(tmp_path / "champion.wal")
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        recovered.close()


# ----------------------------------------------------------------------
# Byte-identity: recovered world == uninterrupted Simulation.run()
# ----------------------------------------------------------------------


class TestRecoveryByteIdentity:
    def test_kill_and_recover_matches_simulation(self, tmp_path):
        scenario = ScenarioSpec(scale=0.05, seed=3, sample_interval_hours=20.0).build()
        sim = Simulation(
            trace=scenario.trace,
            pois=scenario.pois,
            photo_arrivals=scenario.photo_arrivals,
            scheme=create_scheme("our-scheme"),
            config=scenario.config,
            gateway_ids=scenario.gateway_ids,
            end_time_s=scenario.end_time_s,
        )
        result = sim.run()

        def factory():
            return ServiceSession(
                "our-scheme", scenario.pois, scenario.config, variant="champion"
            )

        events = list(iter_scenario_events(scenario))
        half = len(events) // 2
        config = PersistenceConfig(
            wal_dir=tmp_path, snapshot_every=200, fsync="off"
        )
        first = PersistentSession(factory, config, "champion")
        feed_events(first, events[:half])
        del first  # death without close: journal survives via OS buffers

        second = PersistentSession(factory, config, "champion")
        assert second.recovery.replayed_records > 0
        feed_events(second, events[half:])
        report = second.coverage()
        assert report.point_coverage == result.final_point_coverage
        assert report.aspect_coverage_deg == result.final_aspect_coverage_deg
        assert report.delivered_photos == result.delivered_photos
        second.close()


# ----------------------------------------------------------------------
# Server integration: sockets, metrics, manifest
# ----------------------------------------------------------------------


@contextmanager
def running_server(**kwargs):
    kwargs.setdefault("port", 0)
    server = CommandCenterServer(**kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10.0), "server failed to bind"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(10.0)
        assert not thread.is_alive(), "server thread failed to stop"


class TestServerPersistenceIntegration:
    def test_server_journals_and_recovers_across_restarts(self, tmp_path, pois):
        persistence = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        with running_server(pois=pois, persistence=persistence) as server:
            with ServiceClient(*server.address) as client:
                photo = make_photo(owner_id=1)
                client.ingest(1, photo, now=0.0)
                cc_id = server.router.champion.command_center_id
                response = client.contact(1, cc_id, now=10.0, duration=600.0)
                assert response["delivered"] == [photo.photo_id]
                first_coverage = client.coverage()["variants"]["champion"]

        with running_server(pois=pois, persistence=persistence) as server:
            assert server.recoveries["champion"].replayed_records == 2
            with ServiceClient(*server.address) as client:
                recovered = client.coverage()["variants"]["champion"]
        assert recovered == first_coverage

    def test_wal_metrics_and_manifest_recovery_block(self, tmp_path, pois):
        persistence = PersistenceConfig(wal_dir=tmp_path, fsync="off")
        with running_server(pois=pois, persistence=persistence) as server:
            with ServiceClient(*server.address) as client:
                client.ingest(1, make_photo(owner_id=1), now=0.0)
                text = client.metrics_text()
        assert 'repro_service_wal_appends_total{variant="champion"} 1' in text
        assert "repro_service_wal_bytes_total" in text
        assert "repro_service_recovery_seconds" in text

        manifest = server.last_manifest
        assert validate_service_manifest(manifest) == []
        block = manifest["variants"]["champion"]["persistence"]
        assert block["fsync"] == "off"
        assert block["wal_records"] == 1
        assert block["recovery"]["replayed_records"] == 0

    def test_manifest_validator_rejects_broken_persistence_block(
        self, tmp_path, pois
    ):
        persistence = PersistenceConfig(wal_dir=tmp_path)
        with running_server(pois=pois, persistence=persistence) as server:
            pass
        manifest = server.last_manifest
        del manifest["variants"]["champion"]["persistence"]["recovery"]
        errors = validate_service_manifest(manifest)
        assert any("persistence missing 'recovery'" in error for error in errors)

    def test_challenger_journals_independently(self, tmp_path, pois):
        from repro.service.router import RoutingConfig

        persistence = PersistenceConfig(wal_dir=tmp_path, fsync="always")
        routing = RoutingConfig(
            champion="our-scheme",
            challenger="spray-and-wait",
            champion_pct=0.0,
            challenger_pct=100.0,
        )
        with running_server(
            pois=pois, routing=routing, persistence=persistence
        ) as server:
            with ServiceClient(*server.address) as client:
                client.ingest(1, make_photo(owner_id=1), now=0.0)
        assert (tmp_path / "challenger.wal").exists()
        records, _ = WriteAheadLog.read_records(tmp_path / "challenger.wal")
        assert len(records) == 1
        # The champion world saw no traffic: its journal is empty.
        champion_records, _ = WriteAheadLog.read_records(tmp_path / "champion.wal")
        assert champion_records == []
