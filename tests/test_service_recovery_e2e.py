"""Kill -9 a real server mid-replay; recovery must be byte-identical.

These tests supervise ``python -m repro serve`` as a subprocess through
:class:`repro.loadgen.chaos.ManagedServer`, so the death is a genuine
``SIGKILL`` -- no atexit handlers, no flush, no graceful close -- and the
restart runs the full CLI recovery path against the same ``--wal-dir``.
The oracle is the service mode's core contract: a recovered server that
finishes the replay must report exactly the coverage floats and
delivered count of an uninterrupted ``Simulation.run()``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.dtn.simulator import Simulation
from repro.experiments.config import ScenarioSpec
from repro.loadgen import ManagedServer, builtin_plan, run_load_with_restarts
from repro.obs.manifest import ensure_valid_service_manifest
from repro.routing import create_scheme
from repro.service.client import ServiceClient, replay_scenario

SCALE = 0.05
SEED = 3
HALF = 400  # of the 777 events this scenario produces


@pytest.fixture(scope="module")
def scenario():
    return ScenarioSpec(scale=SCALE, seed=SEED).build()


@pytest.fixture(scope="module")
def simulated(scenario):
    sim = Simulation(
        trace=scenario.trace,
        pois=scenario.pois,
        photo_arrivals=scenario.photo_arrivals,
        scheme=create_scheme("our-scheme"),
        config=scenario.config,
        gateway_ids=scenario.gateway_ids,
        end_time_s=scenario.end_time_s,
    )
    sim.run()
    point, aspect_deg = sim.index.normalized(sim.center_coverage())
    return {
        "point": point,
        "aspect_deg": aspect_deg,
        "delivered": sim.command_center.received_count,
    }


class TestKillAndRecover:
    def test_sigkilled_server_recovers_byte_identical(
        self, tmp_path, scenario, simulated
    ):
        wal_dir = tmp_path / "wal"
        manifest_path = tmp_path / "manifest.json"
        server = ManagedServer(
            extra_args=[
                "--scale", str(SCALE), "--seed", str(SEED),
                "--wal-dir", str(wal_dir), "--fsync", "always",
                "--snapshot-every", "150",
                "--manifest", str(manifest_path),
            ],
            log_path=str(tmp_path / "serve.log"),
        )
        server.start()
        try:
            with ServiceClient(server.host, server.port) as client:
                replay_scenario(client, scenario, limit=HALF)

            server.sigkill()  # no flush, no manifest, no goodbye
            assert not server.running()
            server.start()

            with ServiceClient(server.host, server.port) as client:
                stats = client.stats()
                recovery = stats["variants"]["champion"]["persistence"]["recovery"]
                assert recovery["snapshot_seq"] + recovery["replayed_records"] == HALF
                report = replay_scenario(client, scenario, skip=HALF, shutdown=True)
            server._process.wait(timeout=30.0)
        finally:
            server.stop()

        champion = report.coverage["champion"]
        assert champion["point_coverage"] == simulated["point"]
        assert champion["aspect_coverage_deg"] == simulated["aspect_deg"]
        assert champion["delivered_photos"] == simulated["delivered"]

        # The manifest written on the post-recovery shutdown records the
        # recovery and passes schema validation.
        manifest = ensure_valid_service_manifest(
            json.loads(Path(manifest_path).read_text())
        )
        block = manifest["variants"]["champion"]["persistence"]
        assert block["recovery"]["snapshot_seq"] + \
            block["recovery"]["replayed_records"] == HALF

        log = (tmp_path / "serve.log").read_text()
        assert "recovered champion" in log


class TestChaosRestartUnderLoad:
    def test_load_survives_a_server_sigkill_and_restart(self, tmp_path):
        # A tiny world keeps the two boots fast; --clamp-time because
        # concurrent workers race each other by design.
        wal_dir = tmp_path / "wal"
        server = ManagedServer(
            extra_args=[
                "--scale", "0.02", "--seed", "1",
                "--wal-dir", str(wal_dir), "--fsync", "interval",
                "--clamp-time",
            ],
            log_path=str(tmp_path / "serve.log"),
        )
        plan = builtin_plan("smoke").scaled(0.5)
        plan = replace(plan, slo=replace(plan.slo, max_error_rate=1.0,
                                         min_rate_attainment=0.0))
        with server:
            result, restarts = run_load_with_restarts(
                plan, server, kill_after_s=1.5, restarts=1
            )
        assert restarts == 1
        assert server.starts == 2 and server.kills == 1
        acct = result.accounting
        assert acct.consistent(), vars(acct)
        assert acct.ok > 0, "no request succeeded across the restart"
        # The outage surfaces as accounting, not as a crashed driver.
        assert acct.sent == acct.ok + acct.failed
