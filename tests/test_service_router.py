"""Tests for champion/challenger routing (repro.service.router)."""

from __future__ import annotations

import pytest

from repro.service.router import (
    CHALLENGER,
    CHAMPION,
    RouteDecision,
    RoutingConfig,
    SchemeRouter,
)


class TestRoutingConfigValidation:
    def test_defaults_are_champion_only(self):
        config = RoutingConfig()
        assert config.champion == "our-scheme"
        assert config.challenger is None
        assert config.champion_pct == 100.0

    @pytest.mark.parametrize(
        "champion_pct,challenger_pct",
        [(50.0, 40.0), (100.0, 10.0), (0.0, 0.0), (99.0, 0.5)],
    )
    def test_split_must_sum_to_100(self, champion_pct, challenger_pct):
        with pytest.raises(ValueError, match="must sum to 100"):
            RoutingConfig(
                challenger="epidemic",
                champion_pct=champion_pct,
                challenger_pct=challenger_pct,
            )

    @pytest.mark.parametrize("pct", [-1.0, 101.0])
    def test_percentages_bounded(self, pct):
        with pytest.raises(ValueError, match=r"must be in \[0, 100\]"):
            RoutingConfig(challenger="epidemic", champion_pct=pct,
                          challenger_pct=100.0 - pct)

    def test_challenger_share_requires_challenger_spec(self):
        with pytest.raises(ValueError, match="requires a challenger"):
            RoutingConfig(champion_pct=80.0, challenger_pct=20.0)

    def test_specs_are_grammar_checked(self):
        with pytest.raises(ValueError):
            RoutingConfig(champion="our-scheme:no_equals_sign")
        with pytest.raises(ValueError):
            RoutingConfig(challenger=":x=1", champion_pct=90.0, challenger_pct=10.0)

    def test_unregistered_challenger_is_allowed_at_config_time(self):
        # Unknown names are a runtime fallback, not a config error.
        config = RoutingConfig(
            challenger="not-a-registered-scheme",
            champion_pct=50.0,
            challenger_pct=50.0,
        )
        assert config.challenger == "not-a-registered-scheme"


class TestDeterministicRouting:
    CONFIG = RoutingConfig(
        champion="our-scheme",
        challenger="spray-and-wait",
        champion_pct=50.0,
        challenger_pct=50.0,
    )

    def test_same_user_same_variant_100_calls(self):
        for user_id in range(20):
            first = self.CONFIG.variant_for(user_id)
            assert all(
                self.CONFIG.variant_for(user_id) == first for _ in range(100)
            )

    def test_routing_is_hash_based_not_stateful(self):
        # A fresh config object routes identically: no hidden state.
        clone = RoutingConfig(
            champion="our-scheme",
            challenger="spray-and-wait",
            champion_pct=50.0,
            challenger_pct=50.0,
        )
        for user_id in range(200):
            assert clone.variant_for(user_id) == self.CONFIG.variant_for(user_id)

    def test_split_roughly_matches_percentages(self):
        assigned = [self.CONFIG.variant_for(user_id) for user_id in range(2000)]
        challenger_share = assigned.count(CHALLENGER) / len(assigned)
        assert 0.4 < challenger_share < 0.6

    def test_salt_reshuffles_assignment(self):
        salted = RoutingConfig(
            champion="our-scheme",
            challenger="spray-and-wait",
            champion_pct=50.0,
            challenger_pct=50.0,
            salt="v2",
        )
        differing = sum(
            salted.variant_for(u) != self.CONFIG.variant_for(u) for u in range(500)
        )
        assert differing > 0

    def test_champion_only_when_no_challenger_share(self):
        config = RoutingConfig(champion="our-scheme")
        assert all(config.variant_for(u) == CHAMPION for u in range(100))

    def test_buckets_cover_the_range(self):
        buckets = [self.CONFIG.bucket(u) for u in range(500)]
        assert all(0.0 <= b < 100.0 for b in buckets)
        assert min(buckets) < 10.0 and max(buckets) > 90.0


class _Recorder:
    """A stub backend that records calls and optionally explodes."""

    def __init__(self, name, fail=False):
        self.name = name
        self.fail = fail
        self.calls = 0

    def handle(self):
        self.calls += 1
        if self.fail:
            raise RuntimeError(f"{self.name} exploded")
        return self.name


class TestSchemeRouter:
    def make_router(self, challenger_fail=False, challenger_missing=False):
        backends = {}

        def factory(spec, variant):
            if variant == CHALLENGER and challenger_missing:
                raise KeyError(f"unknown scheme {spec!r}")
            backend = _Recorder(variant, fail=(variant == CHALLENGER and challenger_fail))
            backends[variant] = backend
            return backend

        config = RoutingConfig(
            champion="our-scheme",
            challenger="epidemic",
            champion_pct=50.0,
            challenger_pct=50.0,
        )
        return SchemeRouter(config, backend_factory=factory), backends, config

    def _user_on(self, config, variant):
        return next(u for u in range(1000) if config.variant_for(u) == variant)

    def test_champion_built_eagerly_challenger_lazily(self):
        router, backends, config = self.make_router()
        assert CHAMPION in backends and CHALLENGER not in backends
        router.route(self._user_on(config, CHALLENGER))
        assert CHALLENGER in backends

    def test_route_returns_matching_backend(self):
        router, backends, config = self.make_router()
        user = self._user_on(config, CHAMPION)
        decision = router.route(user)
        assert decision.variant == CHAMPION
        assert decision.backend is backends[CHAMPION]
        assert not decision.fell_back

    def test_broken_champion_fails_fast(self):
        def factory(spec, variant):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            SchemeRouter(RoutingConfig(), backend_factory=factory)

    def test_unbuildable_challenger_falls_back_to_champion(self):
        router, backends, config = self.make_router(challenger_missing=True)
        user = self._user_on(config, CHALLENGER)
        decision = router.route(user)
        assert decision.variant == CHAMPION
        assert decision.requested == CHALLENGER
        assert decision.fell_back
        assert "unavailable" in decision.reason
        assert router.fallbacks == 1
        # The failure is cached; later requests keep falling back.
        assert router.route(user).fell_back
        assert router.fallbacks == 2
        assert router.describe()["challenger_error"] is not None

    def test_challenger_request_failure_falls_back_per_request(self):
        router, backends, config = self.make_router(challenger_fail=True)
        user = self._user_on(config, CHALLENGER)
        decision, result = router.dispatch(user, lambda backend: backend.handle())
        assert decision.variant == CHAMPION
        assert decision.fell_back
        assert "exploded" in decision.reason
        assert result == CHAMPION
        assert backends[CHALLENGER].calls == 1  # it was tried first
        assert router.fallbacks == 1

    def test_champion_request_failure_propagates(self):
        router, backends, config = self.make_router()
        backends[CHAMPION].fail = True
        user = self._user_on(config, CHAMPION)
        with pytest.raises(RuntimeError, match="champion exploded"):
            router.dispatch(user, lambda backend: backend.handle())

    def test_dispatch_routes_to_challenger_when_healthy(self):
        router, backends, config = self.make_router()
        user = self._user_on(config, CHALLENGER)
        decision, result = router.dispatch(user, lambda backend: backend.handle())
        assert decision.variant == CHALLENGER
        assert result == CHALLENGER
        assert router.fallbacks == 0

    def test_backends_lists_instantiated_variants(self):
        router, backends, config = self.make_router()
        assert set(router.backends()) == {CHAMPION}
        router.route(self._user_on(config, CHALLENGER))
        assert set(router.backends()) == {CHAMPION, CHALLENGER}

    def test_default_factory_builds_routing_schemes(self):
        from repro.routing.base import RoutingScheme

        router = SchemeRouter(RoutingConfig(champion="epidemic"))
        assert isinstance(router.champion, RoutingScheme)

    def test_describe_summarizes_config(self):
        router, _, _ = self.make_router()
        summary = router.describe()
        assert summary["champion"] == "our-scheme"
        assert summary["challenger_pct"] == 50.0
        assert summary["fallbacks"] == 0
