"""End-to-end tests: socket server, replay client, metrics, manifest."""

from __future__ import annotations

import json
import socket
import threading
from contextlib import contextmanager

import pytest

from repro.core.geometry import Point
from repro.core.metadata import Photo, PhotoMetadata
from repro.core.poi import PoIList
from repro.dtn.simulator import Simulation
from repro.experiments.config import ScenarioSpec
from repro.obs.manifest import load_manifest, validate_service_manifest
from repro.routing import create_scheme
from repro.service.client import ServiceClient, ServiceError, http_get, replay_scenario
from repro.service.router import RoutingConfig
from repro.service.server import CommandCenterServer


def make_photo(x=10.0, y=10.0, taken_at=0.0, owner_id=1):
    return Photo(
        metadata=PhotoMetadata(
            location=Point(x, y),
            coverage_range=80.0,
            field_of_view=1.0,
            orientation=-0.5,  # clockwise from east: points up-and-right
        ),
        taken_at=taken_at,
        owner_id=owner_id,
    )


@contextmanager
def running_server(**kwargs):
    """A CommandCenterServer on a background thread, bound to port 0."""
    kwargs.setdefault("port", 0)
    server = CommandCenterServer(**kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10.0), "server failed to bind"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(10.0)
        assert not thread.is_alive(), "server thread failed to stop"


@pytest.fixture()
def pois():
    return PoIList.from_points([Point(54.0, 34.0), Point(400.0, 400.0)])


class TestServerBasics:
    def test_ping_reports_protocol_version(self, pois):
        from repro.service.protocol import PROTOCOL_VERSION

        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                response = client.ping()
                assert response["protocol"] == PROTOCOL_VERSION
                assert response["server"] == "repro.service"

    def test_request_id_is_echoed(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                response = client.request("ping", id="req-17")
                assert response["id"] == "req-17"

    def test_ingest_then_uplink_delivers_over_the_wire(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                photo = make_photo(owner_id=1)
                ingest = client.ingest(1, photo, now=0.0)
                assert ingest["stored"] and ingest["buffered"] == 1
                cc_id = server.router.champion.command_center_id
                response = client.contact(1, cc_id, now=10.0, duration=600.0)
                assert response["kind"] == "selection"
                assert response["delivered"] == [photo.photo_id]
                assert response["delivered_total"] == 1


class TestServerErrors:
    def test_unknown_op_is_a_bad_request(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.request("frobnicate")
                assert excinfo.value.code == "bad-request"

    def test_stale_time_has_its_own_error_code(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                client.ingest(1, make_photo(), now=100.0)
                with pytest.raises(ServiceError) as excinfo:
                    client.ingest(1, make_photo(), now=50.0)
                assert excinfo.value.code == "stale-time"
                # The connection survives the error.
                assert client.ping()["ok"]

    def test_malformed_json_does_not_kill_the_connection(self, pois):
        with running_server(pois=pois) as server:
            with socket.create_connection(server.address, timeout=10.0) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"this is not json\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-request"
                handle.write(b'{"op": "ping"}\n')
                handle.flush()
                assert json.loads(handle.readline())["ok"] is True


class TestHttpScrape:
    def test_metrics_endpoint_serves_prometheus_text(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                client.ingest(1, make_photo(), now=0.0)
            status, body = http_get(*server.address, path="/metrics")
            assert status == 200
            assert "repro_service_requests_total" in body
            assert "repro_service_request_seconds" in body

    def test_healthz_and_unknown_paths(self, pois):
        with running_server(pois=pois) as server:
            status, body = http_get(*server.address, path="/healthz")
            assert (status, body) == (200, "ok\n")
            status, _ = http_get(*server.address, path="/nope")
            assert status == 404

    def test_http_and_jsonlines_share_the_port(self, pois):
        with running_server(pois=pois) as server:
            status, _ = http_get(*server.address, path="/healthz")
            assert status == 200
            with ServiceClient(*server.address) as client:
                assert client.ping()["ok"]


class TestStatsAndLatency:
    def test_stats_report_latency_quantiles(self, pois):
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address) as client:
                for i in range(20):
                    client.ingest(1, make_photo(taken_at=float(i)), now=float(i))
                stats = client.stats()
        summary = stats["variants"]["champion"]
        latency = summary["latency"]
        assert latency["count"] >= 20
        assert 0.0 <= latency["p50_s"] <= latency["p95_s"] <= latency["p99_s"]
        assert stats["router"]["champion"] == "our-scheme"


class TestClientTimeout:
    def test_unresponsive_server_raises_service_timeout(self):
        """A listener that accepts but never answers must trip the
        per-request timeout, not hang the caller."""
        from repro.service.client import ServiceTimeoutError

        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)
        try:
            client = ServiceClient(*sink.getsockname(), connect_timeout=5.0)
            try:
                with pytest.raises(ServiceTimeoutError) as excinfo:
                    client.request("ping", timeout=0.2)
                assert excinfo.value.op == "ping"
                assert excinfo.value.timeout == pytest.approx(0.2)
            finally:
                client.close()
        finally:
            sink.close()

    def test_per_request_timeout_overrides_client_default(self, pois):
        """A tight per-request timeout still succeeds against a live
        server, and the client keeps working afterwards."""
        with running_server(pois=pois) as server:
            with ServiceClient(*server.address, timeout=30.0) as client:
                assert client.request("ping", timeout=5.0)["ok"]
                assert client.ping()["ok"]


class TestChampionChallenger:
    ROUTING = RoutingConfig(
        champion="our-scheme",
        challenger="spray-and-wait",
        champion_pct=50.0,
        challenger_pct=50.0,
    )

    def test_users_stick_to_their_hashed_variant(self, pois):
        with running_server(pois=pois, routing=self.ROUTING) as server:
            with ServiceClient(*server.address) as client:
                now = 0.0  # session clocks are global: time must not rewind
                for user in range(1, 9):
                    expected = self.ROUTING.variant_for(user)
                    for _ in range(3):
                        response = client.ingest(
                            user, make_photo(owner_id=user), now=now
                        )
                        now += 1.0
                        assert response["variant"] == expected
                        assert not response["fell_back"]

    def test_unbuildable_challenger_falls_back_over_the_wire(self, pois):
        routing = RoutingConfig(
            champion="our-scheme",
            challenger="no-such-scheme",
            champion_pct=50.0,
            challenger_pct=50.0,
        )
        challenger_user = next(
            u for u in range(1, 1000) if routing.variant_for(u) == "challenger"
        )
        with running_server(pois=pois, routing=routing) as server:
            with ServiceClient(*server.address) as client:
                response = client.ingest(
                    challenger_user, make_photo(owner_id=challenger_user), now=0.0
                )
                assert response["variant"] == "champion"
                assert response["requested_variant"] == "challenger"
                assert response["fell_back"]
                stats = client.stats()
        assert stats["router"]["fallbacks"] >= 1
        assert stats["router"]["challenger_error"] is not None


class TestManifest:
    def test_shutdown_writes_a_valid_manifest(self, pois, tmp_path):
        manifest_path = tmp_path / "service-manifest.json"
        with running_server(pois=pois, manifest_path=str(manifest_path)) as server:
            with ServiceClient(*server.address) as client:
                client.ingest(1, make_photo(), now=0.0)
                cc_id = server.router.champion.command_center_id
                client.contact(1, cc_id, now=5.0, duration=600.0)
                client.shutdown()
        manifest = load_manifest(str(manifest_path))
        assert validate_service_manifest(manifest) == []
        assert manifest["kind"] == "service-session"
        champion = manifest["variants"]["champion"]
        assert champion["scheme"] == "our-scheme"
        assert champion["requests"] >= 2
        assert "p95_s" in champion["latency"]
        assert server.last_manifest is not None


class TestLiveReplayByteIdentical:
    """The tentpole guarantee, proven over real sockets."""

    def test_socket_replay_equals_simulation(self):
        spec = ScenarioSpec(scale=0.05, seed=3, sample_interval_hours=20.0)
        scenario = spec.build()

        sim = Simulation(
            trace=scenario.trace,
            pois=scenario.pois,
            photo_arrivals=scenario.photo_arrivals,
            scheme=create_scheme("our-scheme"),
            config=scenario.config,
            gateway_ids=scenario.gateway_ids,
            end_time_s=scenario.end_time_s,
        )
        sim.run()

        with running_server(pois=scenario.pois, config=scenario.config) as server:
            with ServiceClient(*server.address) as client:
                report = replay_scenario(client, scenario)
            live = server.router.champion.simulation

            assert report.delivered_photo_ids == sim.command_center.storage.photo_ids()
            assert (
                live.command_center.storage.photo_ids()
                == sim.command_center.storage.photo_ids()
            )
            assert sim.center_coverage() == live.center_coverage()
            assert report.coverage["champion"]["point_coverage"] == (
                sim.index.normalized(sim.center_coverage())[0]
            )
            assert report.stats["variants"]["champion"]["latency"]["count"] > 0
