"""Tests for the live-session world and the byte-identical guarantee."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point
from repro.core.metadata import Photo, PhotoMetadata
from repro.dtn.events import EventKind
from repro.dtn.faults import FaultPlan
from repro.dtn.simulator import Simulation, SimulationConfig
from repro.experiments.config import ScenarioSpec
from repro.routing import create_scheme
from repro.service.client import iter_scenario_events
from repro.service.protocol import photo_from_wire, photo_to_wire
from repro.service.session import (
    ContactOutcome,
    SelectionOutcome,
    ServiceSession,
    StaleRequestError,
)
from repro.core.poi import PoIList


def make_photo(x=10.0, y=10.0, taken_at=0.0, owner_id=1):
    """A photo aimed up-and-right (orientation is clockwise from east, so
    -0.5 rad points toward +y); from (10, 10) it covers the PoI at
    (54, 34), from (356, 376) the one at (400, 400)."""
    return Photo(
        metadata=PhotoMetadata(
            location=Point(x, y),
            coverage_range=80.0,
            field_of_view=1.0,
            orientation=-0.5,
        ),
        taken_at=taken_at,
        owner_id=owner_id,
    )


@pytest.fixture()
def pois():
    return PoIList.from_points([Point(54.0, 34.0), Point(400.0, 400.0)])


class TestPhotoWireCodec:
    def test_round_trip_preserves_everything(self):
        photo = Photo(
            metadata=PhotoMetadata(
                location=Point(123.456789, -0.000031),
                coverage_range=77.123456789,
                field_of_view=0.7853981633974483,
                orientation=2.25,
            ),
            size_bytes=4 * 1024 * 1024,
            taken_at=3600.5,
            owner_id=42,
            quality=0.875,
            features=(0.1, 0.2, 0.3),
        )
        clone = photo_from_wire(photo_to_wire(photo))
        assert clone.photo_id == photo.photo_id
        assert clone.metadata == photo.metadata  # exact float equality
        assert clone.size_bytes == photo.size_bytes
        assert clone.taken_at == photo.taken_at
        assert clone.owner_id == photo.owner_id
        assert clone.quality == photo.quality
        assert clone.features == photo.features

    def test_round_trip_through_json_text(self):
        import json

        photo = make_photo(x=1.0 / 3.0, y=2.0 / 7.0)
        wire = json.loads(json.dumps(photo_to_wire(photo)))
        assert photo_from_wire(wire).metadata == photo.metadata

    def test_invalid_payloads_raise_protocol_error(self):
        from repro.service.protocol import ProtocolError

        with pytest.raises(ProtocolError):
            photo_from_wire({"photo_id": 1})
        with pytest.raises(ProtocolError):
            photo_from_wire("not a dict")


class TestServiceSessionBasics:
    def test_ingest_stores_photo(self, pois):
        session = ServiceSession("our-scheme", pois)
        outcome = session.ingest(1, make_photo(owner_id=1), now=10.0)
        assert outcome.dispatched and outcome.stored
        assert outcome.buffered == 1

    def test_node_materializes_on_first_request(self, pois):
        session = ServiceSession("our-scheme", pois)
        assert session.simulation.nodes == {}
        session.ingest(5, make_photo(owner_id=5), now=1.0)
        assert 5 in session.simulation.nodes

    def test_time_must_not_go_backwards(self, pois):
        session = ServiceSession("our-scheme", pois)
        session.ingest(1, make_photo(), now=100.0)
        with pytest.raises(StaleRequestError):
            session.ingest(1, make_photo(), now=99.0)
        # Equal timestamps are fine (simultaneous events).
        session.ingest(1, make_photo(), now=100.0)

    def test_command_center_does_not_take_photos(self, pois):
        session = ServiceSession("our-scheme", pois)
        with pytest.raises(ValueError, match="command center"):
            session.ingest(session.command_center_id, make_photo(), now=0.0)

    def test_contact_dispatches_node_pair(self, pois):
        session = ServiceSession("epidemic", pois)
        session.ingest(1, make_photo(owner_id=1), now=0.0)
        outcome = session.contact(1, 2, now=5.0, duration=60.0)
        assert isinstance(outcome, ContactOutcome)
        assert outcome.processed
        # Epidemic floods: node 2 now carries the photo too.
        assert len(session.simulation.nodes[2].storage) == 1

    def test_uplink_returns_selection(self, pois):
        session = ServiceSession("our-scheme", pois)
        photo = make_photo(owner_id=1)
        session.ingest(1, photo, now=0.0)
        outcome = session.contact(1, session.command_center_id, now=10.0, duration=600.0)
        assert isinstance(outcome, SelectionOutcome)
        assert outcome.processed
        assert outcome.delivered_photo_ids == [photo.photo_id]
        assert outcome.delivered_total == 1
        assert outcome.point_coverage >= 0.0

    def test_second_uplink_reports_only_new_deliveries(self, pois):
        session = ServiceSession("our-scheme", pois)
        first = make_photo(owner_id=1, x=10.0)
        session.ingest(1, first, now=0.0)
        session.select_on_contact(1, now=10.0, duration=600.0)
        second = make_photo(owner_id=1, x=356.0, y=376.0)
        session.ingest(1, second, now=20.0)
        outcome = session.select_on_contact(1, now=30.0, duration=600.0)
        assert outcome.delivered_photo_ids == [second.photo_id]
        assert outcome.delivered_total == 2

    def test_coverage_report_counts(self, pois):
        session = ServiceSession("our-scheme", pois)
        session.ingest(1, make_photo(owner_id=1), now=0.0)
        session.contact(1, 2, now=1.0, duration=30.0)
        session.select_on_contact(1, now=2.0, duration=600.0)
        report = session.coverage()
        assert report.created_photos == 1
        assert report.contacts_processed == 1
        assert report.center_contacts == 1
        assert report.delivered_photos == 1
        assert report.nodes == 2

    def test_parameterized_scheme_specs_work(self, pois):
        session = ServiceSession("spray-and-wait:initial_copies=8", pois)
        assert session.scheme.initial_copies == 8

    def test_describe_is_json_ready(self, pois):
        import json

        session = ServiceSession("our-scheme", pois)
        session.ingest(1, make_photo(), now=1.0)
        text = json.dumps(session.describe())
        assert '"our-scheme"' in text


class TestClampTimePolicy:
    def test_strict_is_the_default(self, pois):
        session = ServiceSession("our-scheme", pois)
        assert session.time_policy == "strict"

    def test_unknown_policy_rejected(self, pois):
        with pytest.raises(ValueError, match="time_policy"):
            ServiceSession("our-scheme", pois, time_policy="loose")

    def test_clamp_lifts_late_timestamps_and_counts_them(self, pois):
        session = ServiceSession("our-scheme", pois, time_policy="clamp")
        session.ingest(1, make_photo(taken_at=100.0), 100.0)
        # A concurrent worker's op arrives with an earlier wall time.
        outcome = session.contact(1, 2, 40.0, duration=10.0)
        assert isinstance(outcome, ContactOutcome)
        assert session.clamped_requests == 1
        assert session.clock >= 100.0  # never went backwards
        # In-order requests do not count as clamped.
        session.contact(1, 2, 200.0, duration=10.0)
        assert session.clamped_requests == 1

    def test_describe_reports_policy_and_clamp_count(self, pois):
        session = ServiceSession("our-scheme", pois, time_policy="clamp")
        session.ingest(1, make_photo(taken_at=50.0), 50.0)
        session.contact(1, 2, 10.0, duration=5.0)
        summary = session.describe()
        assert summary["time_policy"] == "clamp"
        assert summary["clamped_requests"] == 1


class TestLiveNodeChurn:
    def _churny_session(self, pois, crash_rate=120.0):
        fault_plan = FaultPlan(
            seed=7,
            crash_rate_per_node_hour=crash_rate,
            mean_downtime_s=300.0,
            storage_loss_fraction=0.5,
        )
        config = SimulationConfig(fault_plan=fault_plan)
        return ServiceSession("our-scheme", pois, config=config, time_policy="clamp")

    def test_churn_inactive_without_crash_rate(self, pois):
        session = ServiceSession("our-scheme", pois)
        session.ingest(1, make_photo(), 0.0)
        session.contact(1, 2, 3600.0, duration=10.0)
        summary = session.describe()
        assert "faults" not in summary

    def test_high_crash_rate_produces_crashes_and_restarts(self, pois):
        session = self._churny_session(pois)
        # A dozen nodes, hours of virtual traffic: at 120 crashes per
        # node-hour transitions are statistically certain.
        for hour in range(6):
            now = hour * 3600.0
            for node in range(1, 13):
                session.ingest(node, make_photo(taken_at=now, owner_id=node), now)
                session.contact(node, node % 12 + 1, now + 60.0, duration=30.0)
        counters = session.simulation.result.fault_counters
        assert counters.crashes > 0
        assert counters.restarts > 0
        summary = session.describe()
        assert summary["faults"]["crashes"] == counters.crashes

    def test_churn_streams_are_deterministic(self, pois):
        def run():
            session = self._churny_session(pois)
            for hour in range(4):
                now = hour * 3600.0
                for node in range(1, 9):
                    session.contact(node, node % 8 + 1, now, duration=30.0)
            counters = session.simulation.result.fault_counters
            return (counters.crashes, counters.restarts)

        assert run() == run()


class TestIterScenarioEvents:
    def test_matches_simulator_event_order(self):
        scenario = ScenarioSpec(scale=0.05, seed=1).build()
        events = list(iter_scenario_events(scenario))
        times = [event.time for event in events]
        assert times == sorted(times)
        # Ties: photo creations precede contacts at the same instant,
        # matching EventKind priorities.
        for first, second in zip(events, events[1:]):
            if first.time == second.time:
                assert first.kind <= second.kind
        kinds = {event.kind for event in events}
        assert kinds <= {EventKind.PHOTO_CREATED, EventKind.CONTACT}

    def test_applies_contact_duration_cap(self):
        scenario = ScenarioSpec(scale=0.05, seed=1, contact_duration_cap_s=30.0).build()
        for event in iter_scenario_events(scenario):
            if event.kind == EventKind.CONTACT:
                assert event.payload[2] <= 30.0


class TestByteIdenticalReplay:
    """The tentpole guarantee: service selections == simulator selections."""

    @pytest.mark.parametrize("scheme", ["our-scheme", "spray-and-wait", "epidemic"])
    def test_replay_equals_simulation(self, scheme):
        spec = ScenarioSpec(scale=0.05, seed=3, sample_interval_hours=20.0)
        scenario = spec.build()

        sim = Simulation(
            trace=scenario.trace,
            pois=scenario.pois,
            photo_arrivals=scenario.photo_arrivals,
            scheme=create_scheme(scheme),
            config=scenario.config,
            gateway_ids=scenario.gateway_ids,
            end_time_s=scenario.end_time_s,
        )
        sim.run()

        session = ServiceSession(scheme, scenario.pois, scenario.config)
        for event in iter_scenario_events(scenario):
            if event.kind == EventKind.PHOTO_CREATED:
                owner_id, photo = event.payload
                session.ingest(owner_id, photo, event.time)
            else:
                node_a, node_b, duration = event.payload[:3]
                session.contact(node_a, node_b, event.time, duration)
        live = session.simulation

        # Identical delivery order (insertion order of the center's
        # storage), counts, coverage floats, and latency lists.
        assert (
            sim.command_center.storage.photo_ids()
            == live.command_center.storage.photo_ids()
        )
        assert sim.command_center.received_count == live.command_center.received_count
        assert sim.center_coverage() == live.center_coverage()
        assert sim.result.created_photos == live.result.created_photos
        assert sim.result.contacts_processed == live.result.contacts_processed
        assert sim.result.center_contacts == live.result.center_contacts
        assert sim.result.delivery_latencies_s == live.result.delivery_latencies_s

    def test_wire_round_trip_stays_byte_identical(self):
        """Photos that crossed the JSON codec still select identically."""
        spec = ScenarioSpec(scale=0.05, seed=5, sample_interval_hours=20.0)
        scenario = spec.build()

        sim = Simulation(
            trace=scenario.trace,
            pois=scenario.pois,
            photo_arrivals=scenario.photo_arrivals,
            scheme=create_scheme("our-scheme"),
            config=scenario.config,
            gateway_ids=scenario.gateway_ids,
            end_time_s=scenario.end_time_s,
        )
        sim.run()

        session = ServiceSession("our-scheme", scenario.pois, scenario.config)
        for event in iter_scenario_events(scenario):
            if event.kind == EventKind.PHOTO_CREATED:
                owner_id, photo = event.payload
                session.ingest(owner_id, photo_from_wire(photo_to_wire(photo)), event.time)
            else:
                node_a, node_b, duration = event.payload[:3]
                session.contact(node_a, node_b, event.time, duration)

        assert (
            sim.command_center.storage.photo_ids()
            == session.simulation.command_center.storage.photo_ids()
        )
        assert sim.center_coverage() == session.simulation.center_coverage()
