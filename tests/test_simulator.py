"""Tests for the discrete-event simulator itself."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import Point
from repro.core.poi import PoI, PoIList
from repro.dtn.simulator import GIGABYTE, MEGABYTE, SampleRecord, Simulation, SimulationConfig
from repro.routing.coverage_scheme import CoverageSelectionScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme
from repro.traces.model import ContactRecord, ContactTrace
from repro.workload.photos import PhotoArrival

from helpers import MB, photo_at_aspect


def sim_with(contacts, arrivals, scheme=None, **config_overrides):
    defaults = dict(
        storage_bytes=10 * 4 * MB,
        bandwidth_bytes_per_s=2 * MB,
        unlimited_contacts=True,
        effective_angle=math.radians(30.0),
        sample_interval_s=100.0,
    )
    defaults.update(config_overrides)
    return Simulation(
        trace=ContactTrace([ContactRecord(*c) for c in contacts]),
        pois=PoIList([PoI(location=Point(0.0, 0.0))]),
        photo_arrivals=arrivals,
        scheme=scheme or CoverageSelectionScheme(),
        config=SimulationConfig(**defaults),
    )


class TestConfigValidation:
    def test_rejects_zero_storage(self):
        with pytest.raises(ValueError):
            SimulationConfig(storage_bytes=0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            SimulationConfig(bandwidth_bytes_per_s=0.0)

    def test_rejects_zero_sample_interval(self):
        with pytest.raises(ValueError):
            SimulationConfig(sample_interval_s=0.0)

    def test_constants(self):
        assert GIGABYTE == 1024**3
        assert MEGABYTE == 1024**2


class TestSimulationSetup:
    def test_nodes_built_from_trace_and_arrivals(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = sim_with(
            contacts=[(10.0, 1, 2, 60.0)],
            arrivals=[PhotoArrival(0.0, 5, photo)],
        )
        assert set(sim.nodes) == {1, 2, 5}

    def test_command_center_not_a_node(self):
        sim = sim_with(contacts=[(10.0, 0, 1, 60.0)], arrivals=[])
        assert 0 not in sim.nodes
        assert sim.command_center.node_id == 0

    def test_gateway_flags(self):
        sim = Simulation(
            trace=ContactTrace([ContactRecord(10.0, 1, 2, 60.0)]),
            pois=PoIList([PoI(location=Point(0.0, 0.0))]),
            photo_arrivals=[],
            scheme=CoverageSelectionScheme(),
            config=SimulationConfig(),
            gateway_ids=[2],
        )
        assert sim.nodes[2].is_gateway
        assert not sim.nodes[1].is_gateway

    def test_byte_budget(self):
        sim = sim_with(contacts=[], arrivals=[], unlimited_contacts=False,
                       bandwidth_bytes_per_s=2 * MB)
        assert sim.byte_budget(3.0) == 6 * MB
        unlimited = sim_with(contacts=[], arrivals=[], unlimited_contacts=True)
        assert unlimited.byte_budget(3.0) is None

    def test_contact_duration_cap_applied(self):
        events = []

        class Recorder(CoverageSelectionScheme):
            def on_contact(self, a, b, now, duration):
                events.append(duration)

        sim = sim_with(
            contacts=[(10.0, 1, 2, 600.0)],
            arrivals=[],
            scheme=Recorder(),
            contact_duration_cap_s=30.0,
        )
        sim.run()
        assert events == [30.0]


class TestSimulationRun:
    def test_counters(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = sim_with(
            contacts=[(10.0, 1, 2, 60.0), (20.0, 0, 2, 60.0)],
            arrivals=[PhotoArrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert result.created_photos == 1
        assert result.contacts_processed == 1
        assert result.center_contacts == 1
        assert result.delivered_photos == 1

    def test_samples_recorded_on_grid(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = sim_with(
            contacts=[(50.0, 0, 1, 60.0), (450.0, 1, 2, 10.0)],
            arrivals=[PhotoArrival(0.0, 1, photo)],
            sample_interval_s=100.0,
        )
        result = sim.run()
        times = [s.time for s in result.samples]
        assert times[:4] == [100.0, 200.0, 300.0, 400.0]
        # Final sample is at the end event.
        assert times[-1] == pytest.approx(460.0)

    def test_coverage_series_monotone(self):
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=float(d)) for d in (0, 120, 240)]
        contacts = [(100.0 * (i + 1), 0, 1, 60.0) for i in range(3)]
        sim = sim_with(
            contacts=contacts,
            arrivals=[PhotoArrival(0.0, 1, p) for p in photos],
            sample_interval_s=50.0,
        )
        result = sim.run()
        aspect_series = [s.aspect_coverage_deg for s in result.samples]
        assert aspect_series == sorted(aspect_series)
        assert result.samples[-1].point_coverage == 1.0

    def test_deliver_deduplicates(self):
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = sim_with(contacts=[], arrivals=[])
        assert sim.deliver(photo)
        assert not sim.deliver(photo)
        assert sim.command_center.received_count == 1

    def test_incremental_coverage_matches_index(self):
        photos = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=float(d)) for d in (0, 90)]
        sim = sim_with(contacts=[], arrivals=[])
        for photo in photos:
            sim.deliver(photo)
        assert sim.center_coverage().isclose(sim.index.collection_coverage(photos))

    def test_unknown_node_events_skipped(self):
        """Events for nodes absent from the node map are ignored gracefully."""
        photo = photo_at_aspect(Point(0.0, 0.0), aspect_deg=0.0)
        sim = sim_with(
            contacts=[(10.0, 1, 2, 60.0)],
            arrivals=[PhotoArrival(0.0, 1, photo)],
        )
        # Manually inject an event pair referencing an unknown node.
        from repro.dtn.events import Event, EventKind

        sim._queue.push(Event(5.0, EventKind.CONTACT, (1, 99, 60.0)))
        sim._queue.push(Event(5.0, EventKind.PHOTO_CREATED, (99, photo)))
        result = sim.run()  # must not raise
        assert result.contacts_processed == 1

    def test_end_time_extends_beyond_trace(self):
        sim = sim_with(contacts=[(10.0, 1, 2, 60.0)], arrivals=[],
                       sample_interval_s=100.0)
        assert sim.run().samples[-1].time == pytest.approx(70.0)

    def test_explicit_end_time(self):
        sim = Simulation(
            trace=ContactTrace([ContactRecord(10.0, 1, 2, 60.0)]),
            pois=PoIList([PoI(location=Point(0.0, 0.0))]),
            photo_arrivals=[],
            scheme=SprayAndWaitScheme(),
            config=SimulationConfig(sample_interval_s=100.0),
            end_time_s=500.0,
        )
        assert sim.run().samples[-1].time == 500.0

    def test_result_scheme_name(self):
        sim = sim_with(contacts=[], arrivals=[], scheme=SprayAndWaitScheme())
        assert sim.run().scheme == "spray-and-wait"

    def test_empty_simulation(self):
        sim = sim_with(contacts=[], arrivals=[])
        result = sim.run()
        assert result.delivered_photos == 0
        assert result.final_point_coverage == 0.0
