"""Tests for trace analysis, contact graph, churn, and new baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Point
from repro.core.poi import PoI, PoIList
from repro.dtn.simulator import Simulation, SimulationConfig
from repro.routing.direct import DirectDeliveryScheme
from repro.routing.epidemic import EpidemicScheme
from repro.traces.analysis import (
    exponential_fit_report,
    fit_pair_exponential,
    intercontact_ccdf,
    rate_heterogeneity,
)
from repro.traces.churn import ChurnModel, apply_churn
from repro.traces.graph import (
    GATEWAY_STRATEGIES,
    contact_graph,
    graph_summary,
    select_gateways_betweenness,
    select_gateways_degree,
    select_gateways_random,
)
from repro.traces.model import ContactRecord, ContactTrace
from repro.traces.synthetic import SyntheticTraceSpec, generate_trace
from repro.workload.photos import PhotoArrival

from helpers import MB, photo_at_aspect


def star_trace():
    """Node 1 is the hub: it meets everyone; leaves meet only node 1."""
    contacts = []
    t = 0.0
    for leaf in (2, 3, 4, 5):
        for k in range(3):
            contacts.append(ContactRecord(t, 1, leaf, 60.0))
            t += 100.0
    return ContactTrace(contacts, name="star")


class TestExponentialFits:
    def test_fit_recovers_known_rate(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(100.0, size=2000)
        fit = fit_pair_exponential((1, 2), list(gaps))
        assert fit.rate_per_s == pytest.approx(0.01, rel=0.1)
        assert fit.ks_pvalue > 0.05
        assert fit.mean_gap_s == pytest.approx(100.0, rel=0.1)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_pair_exponential((1, 2), [])

    def test_fit_rejects_only_zero_gaps(self):
        with pytest.raises(ValueError):
            fit_pair_exponential((1, 2), [0.0, 0.0])

    def test_report_on_synthetic_trace(self):
        spec = SyntheticTraceSpec(
            num_nodes=6, duration_hours=3000.0, num_communities=1,
            intra_rate_per_hour=0.2, scan_interval_s=1.0,
        )
        trace = generate_trace(spec, seed=1)
        fits = exponential_fit_report(trace, min_gaps=30)
        assert len(fits) >= 5
        # The generator IS exponential per pair: most fits should pass KS.
        passing = sum(1 for f in fits if f.ks_pvalue > 0.01)
        assert passing >= 0.8 * len(fits)

    def test_report_validation(self):
        with pytest.raises(ValueError):
            exponential_fit_report(star_trace(), min_gaps=1)

    def test_nonexponential_gaps_fail_ks(self):
        constant_gaps = [100.0] * 300  # deterministic, far from exponential
        fit = fit_pair_exponential((1, 2), constant_gaps)
        assert fit.ks_pvalue < 0.01


class TestCcdfAndHeterogeneity:
    def test_ccdf_monotone_decreasing(self):
        spec = SyntheticTraceSpec(num_nodes=8, duration_hours=500.0,
                                  num_communities=2, intra_rate_per_hour=0.1)
        trace = generate_trace(spec, seed=2)
        curve = intercontact_ccdf(trace, points=20)
        assert len(curve) == 20
        probabilities = [p for _, p in curve]
        assert all(b <= a + 1e-12 for a, b in zip(probabilities, probabilities[1:]))
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    def test_ccdf_empty_trace(self):
        assert intercontact_ccdf(ContactTrace([])) == []

    def test_ccdf_validation(self):
        with pytest.raises(ValueError):
            intercontact_ccdf(ContactTrace([]), points=1)

    def test_heterogeneity_empty(self):
        stats = rate_heterogeneity(ContactTrace([]))
        assert stats["pairs"] == 0.0

    def test_heterogeneity_on_synthetic(self):
        spec = SyntheticTraceSpec(num_nodes=20, duration_hours=500.0,
                                  num_communities=4, rate_sigma=1.2)
        trace = generate_trace(spec, seed=3)
        stats = rate_heterogeneity(trace)
        assert stats["pairs"] > 10
        assert stats["cv"] > 0.3  # heterogeneous by construction


class TestContactGraph:
    def test_edge_weights_count_contacts(self):
        graph = contact_graph(star_trace())
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.edges[1, 2]["weight"] == 3
        assert graph.edges[1, 2]["total_duration"] == pytest.approx(180.0)

    def test_summary(self):
        summary = graph_summary(star_trace())
        assert summary["nodes"] == 5.0
        assert summary["components"] == 1.0
        assert summary["mean_degree"] == pytest.approx(8.0 / 5.0)

    def test_summary_empty(self):
        assert graph_summary(ContactTrace([]))["nodes"] == 0.0

    def test_random_selection_deterministic(self):
        a = select_gateways_random(star_trace(), 2, seed=9)
        b = select_gateways_random(star_trace(), 2, seed=9)
        assert a == b
        assert len(a) == 2

    def test_degree_selects_hub(self):
        assert select_gateways_degree(star_trace(), 1) == [1]

    def test_betweenness_selects_hub(self):
        assert select_gateways_betweenness(star_trace(), 1) == [1]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            select_gateways_random(star_trace(), 0)
        with pytest.raises(ValueError):
            select_gateways_degree(star_trace(), 99)

    def test_strategy_registry(self):
        assert set(GATEWAY_STRATEGIES) == {"random", "degree", "betweenness"}


class TestChurn:
    def test_availability(self):
        model = ChurnModel(mean_on_s=3.0, mean_off_s=1.0)
        assert model.availability == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(mean_on_s=0.0)

    def test_on_intervals_cover_expected_fraction(self):
        model = ChurnModel(mean_on_s=1000.0, mean_off_s=1000.0)
        rng = np.random.default_rng(0)
        horizon = 1e6
        intervals = model.on_intervals(horizon, rng)
        on_time = sum(end - start for start, end in intervals)
        assert on_time / horizon == pytest.approx(0.5, abs=0.1)

    def test_churn_drops_contacts(self):
        spec = SyntheticTraceSpec(num_nodes=10, duration_hours=200.0,
                                  num_communities=2, intra_rate_per_hour=0.2)
        trace = generate_trace(spec, seed=4)
        churned = apply_churn(trace, ChurnModel(mean_on_s=3600.0, mean_off_s=3600.0), seed=1)
        assert 0 < len(churned) < len(trace)
        # Roughly availability^2 of contacts survive (both ends must be on).
        survival = len(churned) / len(trace)
        assert 0.1 < survival < 0.5

    def test_command_center_exempt(self):
        contacts = [ContactRecord(float(t), 0, 1, 10.0) for t in range(0, 10000, 500)]
        trace = ContactTrace(contacts)
        # Node 1 churns, node 0 never does; some contacts must survive even
        # under heavy churn (those in node 1's on periods).
        churned = apply_churn(trace, ChurnModel(mean_on_s=2000.0, mean_off_s=2000.0), seed=0)
        assert 0 < len(churned) <= len(trace)

    def test_deterministic(self):
        trace = star_trace()
        model = ChurnModel(mean_on_s=100.0, mean_off_s=100.0)
        assert list(apply_churn(trace, model, seed=5)) == list(apply_churn(trace, model, seed=5))


class TestNewBaselines:
    def build(self, scheme, contacts, arrivals, storage=10 * 4 * MB):
        return Simulation(
            trace=ContactTrace([ContactRecord(*c) for c in contacts]),
            pois=PoIList([PoI(location=Point(0.0, 0.0))]),
            photo_arrivals=arrivals,
            scheme=scheme,
            config=SimulationConfig(
                storage_bytes=storage,
                unlimited_contacts=True,
                effective_angle=math.radians(30.0),
                sample_interval_s=3600.0,
            ),
        )

    def test_epidemic_floods_to_peers(self):
        photo = photo_at_aspect(Point(0.0, 0.0), 0.0)
        sim = self.build(
            EpidemicScheme(),
            [(100.0, 1, 2, 60.0), (200.0, 0, 2, 60.0)],
            [PhotoArrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert photo.photo_id in sim.nodes[2].storage  # replica kept
        assert result.delivered_photos == 1

    def test_epidemic_respects_storage(self):
        photos = [photo_at_aspect(Point(0.0, 0.0), float(d)) for d in range(3)]
        sim = self.build(
            EpidemicScheme(),
            [(100.0, 1, 2, 60.0)],
            [PhotoArrival(float(i), 1, p) for i, p in enumerate(photos)],
            storage=2 * 4 * MB,
        )
        sim.run()
        assert len(sim.nodes[2].storage) <= 2

    def test_direct_never_relays(self):
        photo = photo_at_aspect(Point(0.0, 0.0), 0.0)
        sim = self.build(
            DirectDeliveryScheme(),
            [(100.0, 1, 2, 60.0), (200.0, 0, 2, 60.0)],
            [PhotoArrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert photo.photo_id not in sim.nodes[2].storage
        assert result.delivered_photos == 0  # node 1 never meets the CC

    def test_direct_delivers_from_source(self):
        photo = photo_at_aspect(Point(0.0, 0.0), 0.0)
        sim = self.build(
            DirectDeliveryScheme(),
            [(100.0, 0, 1, 60.0)],
            [PhotoArrival(0.0, 1, photo)],
        )
        result = sim.run()
        assert result.delivered_photos == 1
        assert photo.photo_id not in sim.nodes[1].storage
