"""Tests for the contact-trace model and its statistics."""

from __future__ import annotations

import pytest

from repro.traces.model import ContactRecord, ContactTrace


def record(start, a, b, duration=60.0):
    return ContactRecord(start, a, b, duration)


class TestContactRecord:
    def test_normalizes_node_order(self):
        contact = ContactRecord(0.0, 5, 2, 10.0)
        assert contact.node_a == 2
        assert contact.node_b == 5
        assert contact.pair == (2, 5)

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError):
            ContactRecord(0.0, 3, 3, 10.0)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            ContactRecord(-1.0, 1, 2, 10.0)
        with pytest.raises(ValueError):
            ContactRecord(0.0, 1, 2, -10.0)

    def test_end_and_involves(self):
        contact = record(10.0, 1, 2, duration=5.0)
        assert contact.end == 15.0
        assert contact.involves(1) and contact.involves(2)
        assert not contact.involves(3)


class TestContactTrace:
    def sample(self):
        return ContactTrace(
            [
                record(100.0, 1, 2),
                record(0.0, 1, 2),
                record(50.0, 2, 3),
                record(200.0, 1, 3, duration=100.0),
            ],
            name="sample",
        )

    def test_sorted_by_time(self):
        trace = self.sample()
        starts = [c.start for c in trace]
        assert starts == sorted(starts)

    def test_node_ids(self):
        assert self.sample().node_ids() == {1, 2, 3}

    def test_span(self):
        trace = self.sample()
        assert trace.start_time == 0.0
        assert trace.end_time == 300.0
        assert trace.span == 300.0

    def test_empty_trace(self):
        trace = ContactTrace([])
        assert len(trace) == 0
        assert trace.span == 0.0
        assert trace.mean_contact_duration() == 0.0

    def test_restricted_to(self):
        sub = self.sample().restricted_to({1, 2})
        assert len(sub) == 2
        assert sub.node_ids() == {1, 2}

    def test_window(self):
        sub = self.sample().window(40.0, 150.0)
        assert [c.start for c in sub] == [50.0, 100.0]

    def test_last_contacts(self):
        sub = self.sample().last_contacts(2)
        assert [c.start for c in sub] == [100.0, 200.0]

    def test_shifted(self):
        shifted = self.sample().shifted(10.0)
        assert shifted.start_time == 10.0
        assert len(shifted) == 4

    def test_relabeled(self):
        relabeled = self.sample().relabeled({1: 10, 2: 20, 3: 30})
        assert relabeled.node_ids() == {10, 20, 30}

    def test_duration_cap(self):
        capped = self.sample().with_duration_cap(30.0)
        assert all(c.duration <= 30.0 for c in capped)
        with pytest.raises(ValueError):
            self.sample().with_duration_cap(-1.0)

    def test_merged_with(self):
        extra = ContactTrace([record(500.0, 4, 5)])
        merged = self.sample().merged_with(extra)
        assert len(merged) == 5
        assert merged.node_ids() == {1, 2, 3, 4, 5}

    def test_indexing(self):
        trace = self.sample()
        assert trace[0].start == 0.0

    def test_pair_intercontact_gaps(self):
        gaps = self.sample().pair_intercontact_gaps()
        assert gaps[(1, 2)] == [100.0]
        assert (2, 3) not in gaps  # single contact, no gap

    def test_pair_rates(self):
        rates = self.sample().pair_rates()
        assert rates[(1, 2)] == pytest.approx(1.0 / 100.0)

    def test_contacts_per_node(self):
        counts = self.sample().contacts_per_node()
        assert counts[1] == 3
        assert counts[2] == 3
        assert counts[3] == 2

    def test_mean_duration(self):
        assert self.sample().mean_contact_duration() == pytest.approx((60 * 3 + 100) / 4)

    def test_summary_keys(self):
        summary = self.sample().summary()
        assert summary["contacts"] == 4.0
        assert summary["nodes"] == 3.0
        assert summary["span_hours"] == pytest.approx(300.0 / 3600.0)
