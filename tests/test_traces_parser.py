"""Tests for the trace file parsers and the CSV writer."""

from __future__ import annotations

import io

import pytest

from repro.traces.model import ContactRecord, ContactTrace
from repro.traces.parser import (
    TraceParseError,
    load_trace,
    parse_csv,
    parse_imote,
    parse_one_events,
    write_csv,
)


class TestParseCsv:
    def test_basic(self):
        source = io.StringIO("start,node_a,node_b,duration\n0.0,1,2,60\n100,2,3,30\n")
        trace = parse_csv(source)
        assert len(trace) == 2
        assert trace[0] == ContactRecord(0.0, 1, 2, 60.0)

    def test_headerless(self):
        trace = parse_csv(io.StringIO("0.0,1,2,60\n"))
        assert len(trace) == 1

    def test_comments_and_blank_lines(self):
        trace = parse_csv(io.StringIO("# comment\n\n0.0,1,2,60\n"))
        assert len(trace) == 1

    def test_error_carries_line_number(self):
        with pytest.raises(TraceParseError) as exc:
            parse_csv(io.StringIO("0.0,1,2,60\n1.0,1,2\n"))
        assert exc.value.line_number == 2

    def test_bad_values_rejected(self):
        with pytest.raises(TraceParseError):
            parse_csv(io.StringIO("0.0,1,x,60\n"))
        with pytest.raises(TraceParseError):
            parse_csv(io.StringIO("0.0,1,1,60\n"))  # self-contact

    def test_roundtrip_with_writer(self, tmp_path):
        trace = ContactTrace(
            [ContactRecord(0.0, 1, 2, 60.0), ContactRecord(50.0, 2, 3, 120.0)],
            name="roundtrip",
        )
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        loaded = parse_csv(path, name="roundtrip")
        assert list(loaded) == list(trace)

    def test_write_to_stream(self):
        trace = ContactTrace([ContactRecord(0.0, 1, 2, 60.0)])
        buffer = io.StringIO()
        write_csv(trace, buffer)
        assert "start,node_a,node_b,duration" in buffer.getvalue()


class TestParseOneEvents:
    def test_up_down_pairs(self):
        source = io.StringIO(
            "0.0 CONN 1 2 up\n"
            "50.0 CONN 1 2 down\n"
            "60.0 CONN 2 3 up\n"
            "90.0 CONN 3 2 down\n"
        )
        trace = parse_one_events(source)
        assert len(trace) == 2
        assert trace[0] == ContactRecord(0.0, 1, 2, 50.0)
        assert trace[1] == ContactRecord(60.0, 2, 3, 30.0)

    def test_dangling_up_closed_at_end(self):
        source = io.StringIO("0.0 CONN 1 2 up\n100.0 CONN 3 4 up\n100.0 CONN 3 4 down\n")
        trace = parse_one_events(source)
        dangling = [c for c in trace if c.pair == (1, 2)]
        assert dangling[0].duration == 100.0

    def test_double_up_rejected(self):
        source = io.StringIO("0.0 CONN 1 2 up\n10.0 CONN 1 2 up\n")
        with pytest.raises(TraceParseError):
            parse_one_events(source)

    def test_down_without_up_rejected(self):
        with pytest.raises(TraceParseError):
            parse_one_events(io.StringIO("0.0 CONN 1 2 down\n"))

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceParseError):
            parse_one_events(io.StringIO("0.0 FOO 1 2 up\n"))
        with pytest.raises(TraceParseError):
            parse_one_events(io.StringIO("0.0 CONN 1 2 sideways\n"))

    def test_comments_skipped(self):
        source = io.StringIO("# header\n0.0 CONN 1 2 up\n5.0 CONN 1 2 down\n")
        assert len(parse_one_events(source)) == 1


class TestParseImote:
    def test_basic(self):
        trace = parse_imote(io.StringIO("1 2 0.0 50.0\n2 3 60 90\n"))
        assert len(trace) == 2
        assert trace[0].duration == 50.0

    def test_end_before_start_rejected(self):
        with pytest.raises(TraceParseError):
            parse_imote(io.StringIO("1 2 50.0 0.0\n"))

    def test_short_row_rejected(self):
        with pytest.raises(TraceParseError):
            parse_imote(io.StringIO("1 2 50.0\n"))


class TestLoadTrace:
    def test_dispatch_by_format(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.0,1,2,60\n")
        trace = load_trace(path, fmt="csv")
        assert len(trace) == 1
        assert trace.name == "t"

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            load_trace(tmp_path / "t.xyz", fmt="xyz")

    def test_imote_from_file(self, tmp_path):
        path = tmp_path / "sightings.txt"
        path.write_text("1 2 0 30\n")
        trace = load_trace(path, fmt="imote", name="crawdad")
        assert trace.name == "crawdad"
