"""Tests for the synthetic trace generators (the MIT/Cambridge stand-ins)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.traces.synthetic import (
    SyntheticTraceSpec,
    cambridge06_like,
    gateway_uplink_contacts,
    generate_trace,
    mit_reality_like,
)


class TestSpecValidation:
    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            SyntheticTraceSpec(num_nodes=1, duration_hours=10.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            SyntheticTraceSpec(num_nodes=5, duration_hours=0.0)

    def test_rejects_bad_connectivity(self):
        with pytest.raises(ValueError):
            SyntheticTraceSpec(num_nodes=5, duration_hours=1.0, pair_connectivity=1.5)


class TestGenerateTrace:
    def spec(self, **overrides):
        defaults = dict(
            num_nodes=20,
            duration_hours=48.0,
            num_communities=4,
            intra_rate_per_hour=0.1,
            inter_rate_per_hour=0.01,
            pair_connectivity=0.5,
            scan_interval_s=300.0,
        )
        defaults.update(overrides)
        return SyntheticTraceSpec(**defaults)

    def test_deterministic_for_seed(self):
        a = generate_trace(self.spec(), seed=42)
        b = generate_trace(self.spec(), seed=42)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = generate_trace(self.spec(), seed=1)
        b = generate_trace(self.spec(), seed=2)
        assert list(a) != list(b)

    def test_node_ids_within_range(self):
        trace = generate_trace(self.spec(), seed=0)
        assert trace.node_ids() <= set(range(1, 21))

    def test_contacts_within_horizon(self):
        trace = generate_trace(self.spec(), seed=0)
        assert all(c.start < 48.0 * 3600.0 for c in trace)

    def test_starts_snapped_to_scan_interval(self):
        trace = generate_trace(self.spec(), seed=0)
        for contact in trace:
            assert contact.start % 300.0 == pytest.approx(0.0, abs=1e-6)

    def test_durations_at_least_one_scan(self):
        trace = generate_trace(self.spec(), seed=0)
        assert all(c.duration >= 300.0 for c in trace)

    def test_intra_community_pairs_meet_more(self):
        """Community structure: same-community pairs contact more often."""
        spec = self.spec(num_nodes=24, duration_hours=200.0, intra_rate_per_hour=0.2)
        trace = generate_trace(spec, seed=3)
        community = {node: (node - 1) % 4 for node in range(1, 25)}
        intra = inter = 0
        for contact in trace:
            if community[contact.node_a] == community[contact.node_b]:
                intra += 1
            else:
                inter += 1
        assert intra > inter

    def test_intercontact_gaps_exponential_ish(self):
        """The generator matches the Sec. III-B model: *per pair*, gaps are
        exponential, so each pair's coefficient of variation is near 1.
        (Pooled across pairs the CV exceeds 1 -- rates are heterogeneous.)
        """
        spec = self.spec(num_nodes=6, duration_hours=2000.0, num_communities=1,
                         intra_rate_per_hour=0.2, scan_interval_s=1.0)
        trace = generate_trace(spec, seed=5)
        per_pair_cv = []
        for pair_gaps in trace.pair_intercontact_gaps().values():
            gaps = np.asarray(pair_gaps)
            if len(gaps) >= 50:
                per_pair_cv.append(gaps.std() / gaps.mean())
        assert len(per_pair_cv) >= 5
        median_cv = float(np.median(per_pair_cv))
        assert 0.8 < median_cv < 1.25

    def test_first_node_id_offset(self):
        spec = self.spec(first_node_id=100)
        trace = generate_trace(spec, seed=0)
        assert min(trace.node_ids()) >= 100


class TestNamedTraces:
    def test_mit_reality_like_shape(self):
        trace = mit_reality_like(seed=0, duration_hours=50.0)
        assert trace.name == "mit-reality-like"
        nodes = trace.node_ids()
        assert nodes <= set(range(1, 98))
        assert len(nodes) > 50  # most of the 97 nodes appear even in 50 h

    def test_cambridge06_like_shape(self):
        trace = cambridge06_like(seed=0, duration_hours=50.0)
        nodes = trace.node_ids()
        assert nodes <= set(range(1, 55))
        # Cambridge06 scans every 2 minutes.
        for contact in trace:
            assert contact.start % 120.0 == pytest.approx(0.0, abs=1e-6)

    def test_cambridge_denser_than_mit(self):
        mit = mit_reality_like(seed=0, duration_hours=100.0)
        cam = cambridge06_like(seed=0, duration_hours=100.0)
        assert (
            cam.summary()["contacts_per_node_hour"]
            > mit.summary()["contacts_per_node_hour"]
        )


class TestGatewayUplinks:
    def test_contacts_only_for_gateways(self):
        trace = gateway_uplink_contacts([3, 7], end_time_s=100 * 3600.0, seed=0)
        for contact in trace:
            assert contact.node_a == 0
            assert contact.node_b in (3, 7)

    def test_mean_interval_roughly_respected(self):
        trace = gateway_uplink_contacts(
            [1], end_time_s=1000 * 3600.0, mean_interval_s=3600.0, seed=1
        )
        expected = 1000.0
        assert 0.8 * expected < len(trace) < 1.2 * expected

    def test_command_center_cannot_be_gateway(self):
        with pytest.raises(ValueError):
            gateway_uplink_contacts([0], end_time_s=100.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            gateway_uplink_contacts([1], end_time_s=10.0, mean_interval_s=0.0)

    def test_deterministic(self):
        a = gateway_uplink_contacts([1, 2], end_time_s=1e5, seed=9)
        b = gateway_uplink_contacts([1, 2], end_time_s=1e5, seed=9)
        assert list(a) == list(b)
