"""Tests for transfer-plan construction and budget-limited execution."""

from __future__ import annotations

import math

import pytest

from repro.core.coverage_index import CoverageIndex
from repro.core.geometry import Point
from repro.core.poi import PoIList
from repro.core.selection import NodeSelection, ReallocationResult, StorageSpec, greedy_reallocate
from repro.core.transfer import Transfer, build_transfer_plan, execute_transfer_plan

from helpers import MB, make_photo, photo_at_aspect

THETA = math.radians(30.0)


def make_result(first_id, first_photos, second_id, second_photos):
    return ReallocationResult(
        first=NodeSelection(node_id=first_id, photos=list(first_photos)),
        second=NodeSelection(node_id=second_id, photos=list(second_photos)),
    )


class TestBuildTransferPlan:
    def test_no_transfers_when_already_held(self):
        photo = make_photo(0, 0, 0)
        result = make_result(1, [photo], 2, [])
        plan = build_transfer_plan(result, {1: [photo], 2: []})
        assert len(plan) == 0

    def test_transfer_scheduled_for_missing_photo(self):
        photo = make_photo(0, 0, 0)
        result = make_result(1, [photo], 2, [])
        plan = build_transfer_plan(result, {1: [], 2: [photo]})
        assert len(plan) == 1
        transfer = plan.transfers[0]
        assert transfer.sender_id == 2
        assert transfer.receiver_id == 1
        assert transfer.photo == photo

    def test_first_node_needs_come_first(self):
        to_first = make_photo(0, 0, 0)
        to_second = make_photo(0, 0, 0)
        result = make_result(1, [to_first], 2, [to_second])
        plan = build_transfer_plan(result, {1: [to_second], 2: [to_first]})
        assert [t.receiver_id for t in plan] == [1, 2]

    def test_selection_order_preserved(self):
        photos = [make_photo(0, 0, 0) for _ in range(3)]
        result = make_result(1, photos, 2, [])
        plan = build_transfer_plan(result, {1: [], 2: photos})
        assert [t.photo for t in plan] == photos

    def test_both_selected_photo_transferred_once_per_receiver(self):
        shared = make_photo(0, 0, 0)
        result = make_result(1, [shared], 2, [shared])
        plan = build_transfer_plan(result, {1: [], 2: [shared]})
        # Node 1 needs it (from 2); node 2 already has it.
        assert len(plan) == 1
        assert plan.transfers[0].receiver_id == 1

    def test_total_bytes(self):
        photos = [make_photo(0, 0, 0, size_bytes=MB) for _ in range(3)]
        result = make_result(1, photos, 2, [])
        plan = build_transfer_plan(result, {1: [], 2: photos})
        assert plan.total_bytes == 3 * MB


class TestExecuteTransferPlan:
    def capacities(self, cap=100 * MB):
        return {1: cap, 2: cap}

    def test_unlimited_budget_realizes_solution(self):
        photo_a = make_photo(0, 0, 0)
        photo_b = make_photo(0, 0, 0)
        result = make_result(1, [photo_a], 2, [photo_b])
        holdings = {1: [photo_b], 2: [photo_a]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(plan, result, holdings, self.capacities(), None)
        assert not outcome.truncated
        assert {p.photo_id for p in outcome.final_collections[1]} == {photo_a.photo_id}
        assert {p.photo_id for p in outcome.final_collections[2]} == {photo_b.photo_id}

    def test_budget_truncates_in_order(self):
        photos = [make_photo(0, 0, 0, size_bytes=4 * MB) for _ in range(3)]
        result = make_result(1, photos, 2, [])
        holdings = {1: [], 2: photos}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(
            plan, result, holdings, self.capacities(), byte_budget=9 * MB
        )
        assert outcome.truncated
        # Only the first two photos fit in 9 MB.
        assert [t.photo for t in outcome.completed_transfers] == photos[:2]
        assert outcome.bytes_used == 8 * MB

    def test_truncated_contact_keeps_leftovers(self):
        wanted = make_photo(0, 0, 0, size_bytes=4 * MB)
        leftover = make_photo(0, 0, 0, size_bytes=4 * MB)
        result = make_result(1, [wanted], 2, [])
        holdings = {1: [leftover], 2: [wanted, leftover]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(
            plan, result, holdings, self.capacities(), byte_budget=2 * MB
        )
        assert outcome.truncated
        # Nothing was transferred; node 1 still holds its old photo.
        assert outcome.final_collections[1] == [leftover]

    def test_completed_plan_trims_to_selection(self):
        wanted = make_photo(0, 0, 0, size_bytes=4 * MB)
        stale = make_photo(0, 0, 0, size_bytes=4 * MB)
        result = make_result(1, [wanted], 2, [])
        holdings = {1: [stale], 2: [wanted]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(plan, result, holdings, self.capacities(), None)
        assert not outcome.truncated
        assert [p.photo_id for p in outcome.final_collections[1]] == [wanted.photo_id]
        assert outcome.final_collections[2] == []

    def test_eviction_makes_room(self):
        wanted = make_photo(0, 0, 0, size_bytes=4 * MB)
        stale = make_photo(0, 0, 0, size_bytes=4 * MB)
        result = make_result(1, [wanted], 2, [])
        holdings = {1: [stale], 2: [wanted]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(
            plan, result, holdings, {1: 4 * MB, 2: 4 * MB}, None
        )
        final_ids = {p.photo_id for p in outcome.final_collections[1]}
        assert final_ids == {wanted.photo_id}

    def test_never_evicts_target_photos(self):
        keep = make_photo(0, 0, 0, size_bytes=4 * MB)
        incoming = make_photo(0, 0, 0, size_bytes=4 * MB)
        result = make_result(1, [keep, incoming], 2, [])
        holdings = {1: [keep], 2: [incoming]}
        plan = build_transfer_plan(result, holdings)
        # Capacity 4 MB: the incoming photo cannot fit without evicting a
        # target photo -> transfer skipped, keep stays.
        outcome = execute_transfer_plan(plan, result, holdings, {1: 4 * MB, 2: 4 * MB}, None)
        assert [p.photo_id for p in outcome.final_collections[1]] == [keep.photo_id]

    def test_unlimited_receiver_never_drops(self):
        wanted = make_photo(0, 0, 0)
        archive = make_photo(0, 0, 0)
        result = make_result(0, [wanted], 2, [])
        holdings = {0: [archive], 2: [wanted]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(plan, result, holdings, {0: None, 2: 100 * MB}, None)
        ids = {p.photo_id for p in outcome.final_collections[0]}
        assert ids == {archive.photo_id, wanted.photo_id}

    def test_delivered_to_helper(self):
        photo = make_photo(0, 0, 0)
        result = make_result(1, [photo], 2, [])
        holdings = {1: [], 2: [photo]}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(plan, result, holdings, self.capacities(), None)
        assert outcome.delivered_to(1) == [photo]
        assert outcome.delivered_to(2) == []


class TestEndToEndContact:
    def test_reallocation_plus_transfer_respects_everything(self):
        """A full contact: reallocate, plan, execute, check invariants."""
        index = CoverageIndex(
            PoIList.from_points([Point(0.0, 0.0), Point(400.0, 0.0)]),
            effective_angle=THETA,
        )
        photos_a = [photo_at_aspect(Point(0.0, 0.0), aspect_deg=d) for d in (0.0, 30.0)]
        photos_b = [photo_at_aspect(Point(400.0, 0.0), aspect_deg=d) for d in (90.0, 270.0)]
        spec_a = StorageSpec(1, 3 * 4 * MB, 0.8)
        spec_b = StorageSpec(2, 2 * 4 * MB, 0.4)
        result = greedy_reallocate(index, photos_a, photos_b, spec_a, spec_b)
        holdings = {1: photos_a, 2: photos_b}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(
            plan, result, holdings, {1: spec_a.capacity_bytes, 2: spec_b.capacity_bytes},
            byte_budget=8 * MB,
        )
        for node_id, capacity in ((1, spec_a.capacity_bytes), (2, spec_b.capacity_bytes)):
            used = sum(p.size_bytes for p in outcome.final_collections[node_id])
            assert used <= capacity
        assert outcome.bytes_used <= 8 * MB
