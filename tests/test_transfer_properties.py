"""Property-based tests for transfer planning and execution invariants."""

from __future__ import annotations

import math
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage_index import CoverageIndex
from repro.core.geometry import Point
from repro.core.poi import PoIList
from repro.core.selection import NodeSelection, ReallocationResult
from repro.core.transfer import build_transfer_plan, execute_transfer_plan

from helpers import MB, make_photo

PHOTO = 4 * MB


@st.composite
def transfer_cases(draw):
    """Random holdings + random target selections over a shared pool."""
    pool_size = draw(st.integers(min_value=0, max_value=8))
    pool = [make_photo(float(i), 0.0, 0.0, size_bytes=PHOTO) for i in range(pool_size)]

    def subset():
        mask = draw(st.lists(st.booleans(), min_size=pool_size, max_size=pool_size))
        return [photo for photo, keep in zip(pool, mask) if keep]

    holdings_a = subset()
    holdings_b = [p for p in pool if p not in holdings_a] + subset()
    # Deduplicate holdings_b preserving order.
    seen = set()
    holdings_b = [p for p in holdings_b if p.photo_id not in seen and not seen.add(p.photo_id)]

    # Target selections: subsets of the pool, only photos someone holds.
    held_ids = {p.photo_id for p in holdings_a} | {p.photo_id for p in holdings_b}
    available = [p for p in pool if p.photo_id in held_ids]
    target_a = [p for p in available if draw(st.booleans())]
    target_b = [p for p in available if draw(st.booleans())]

    # Capacities at least cover current holdings (the simulator's storage
    # enforces this at all times; smaller capacities are unreachable states).
    capacity_a = len(holdings_a) * PHOTO + draw(st.integers(min_value=0, max_value=4)) * PHOTO
    capacity_b = len(holdings_b) * PHOTO + draw(st.integers(min_value=0, max_value=4)) * PHOTO
    budget = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=8 * PHOTO)))
    return holdings_a, holdings_b, target_a, target_b, capacity_a, capacity_b, budget


class TestExecutionInvariants:
    @given(case=transfer_cases())
    @settings(max_examples=150, deadline=None)
    def test_physical_invariants(self, case):
        holdings_a, holdings_b, target_a, target_b, cap_a, cap_b, budget = case
        result = ReallocationResult(
            first=NodeSelection(node_id=1, photos=target_a),
            second=NodeSelection(node_id=2, photos=target_b),
        )
        holdings = {1: holdings_a, 2: holdings_b}
        plan = build_transfer_plan(result, holdings)
        outcome = execute_transfer_plan(
            plan, result, holdings,
            capacities={1: cap_a, 2: cap_b},
            byte_budget=budget,
        )

        # 1. Byte budget respected.
        if budget is not None:
            assert outcome.bytes_used <= budget
        assert outcome.bytes_used == sum(
            t.photo.size_bytes for t in outcome.completed_transfers
        )

        # 2. Capacity respected on both nodes.
        for node_id, capacity in ((1, cap_a), (2, cap_b)):
            used = sum(p.size_bytes for p in outcome.final_collections[node_id])
            assert used <= capacity

        # 3. Completed transfers are a prefix of the plan.
        assert outcome.completed_transfers == [
            t for t in list(plan)[: len(outcome.completed_transfers) + _skips(plan, outcome)]
            if t in outcome.completed_transfers
        ]

        # 4. Nobody conjures photos: every held photo existed before or was
        #    transferred in.
        before = {p.photo_id for p in holdings_a} | {p.photo_id for p in holdings_b}
        for node_id in (1, 2):
            for photo in outcome.final_collections[node_id]:
                assert photo.photo_id in before

        # 5. A completed (untruncated) plan leaves each node with a subset
        #    of its target selection.
        if not outcome.truncated:
            for node_id, targets in ((1, target_a), (2, target_b)):
                target_ids = {p.photo_id for p in targets}
                for photo in outcome.final_collections[node_id]:
                    assert photo.photo_id in target_ids

    @given(case=transfer_cases())
    @settings(max_examples=80, deadline=None)
    def test_transfers_only_ship_held_photos(self, case):
        holdings_a, holdings_b, target_a, target_b, *_ = case
        result = ReallocationResult(
            first=NodeSelection(node_id=1, photos=target_a),
            second=NodeSelection(node_id=2, photos=target_b),
        )
        holdings = {1: holdings_a, 2: holdings_b}
        plan = build_transfer_plan(result, holdings)
        for transfer in plan:
            receiver_held = {p.photo_id for p in holdings[transfer.receiver_id]}
            assert transfer.photo.photo_id not in receiver_held


def _skips(plan, outcome) -> int:
    """Transfers attempted but skipped for capacity (not counted in bytes)."""
    completed_ids = {id(t) for t in outcome.completed_transfers}
    count = 0
    for transfer in plan:
        if id(transfer) not in completed_ids:
            count += 1
    return count


class TestTruncationPrefixProperty:
    """Section III-D's robustness claim, stated as a property: whatever the
    truncation point, the photos that moved are exactly the selection-order
    prefix of the plan that fits the byte budget."""

    @given(case=transfer_cases())
    @settings(max_examples=150, deadline=None)
    def test_delivered_prefix_is_selection_order_prefix(self, case):
        holdings_a, holdings_b, target_a, target_b, *_ = case
        result = ReallocationResult(
            first=NodeSelection(node_id=1, photos=target_a),
            second=NodeSelection(node_id=2, photos=target_b),
        )
        holdings = {1: holdings_a, 2: holdings_b}
        plan = build_transfer_plan(result, holdings)
        # Generous capacities isolate truncation from capacity skips.
        capacities = {1: 64 * PHOTO, 2: 64 * PHOTO}

        for budget in range(0, plan.total_bytes + PHOTO, PHOTO // 2):
            outcome = execute_transfer_plan(
                plan, result, holdings, capacities=capacities, byte_budget=budget
            )
            # The exact prefix that fits the budget, in plan order.
            expected, used = [], 0
            for transfer in plan:
                if used + transfer.photo.size_bytes > budget:
                    break
                expected.append(transfer)
                used += transfer.photo.size_bytes
            assert outcome.completed_transfers == expected
            assert outcome.bytes_used == used <= budget
            assert outcome.truncated == (len(expected) < len(plan))

    @given(case=transfer_cases(), drop_mask=st.lists(st.booleans(), min_size=32, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_lossy_transfers_spend_budget_but_store_nothing(self, case, drop_mask):
        """With a fault-injection loss filter, dropped photos consume bytes
        (the transmission happened) but never appear in any collection."""
        holdings_a, holdings_b, target_a, target_b, cap_a, cap_b, budget = case
        result = ReallocationResult(
            first=NodeSelection(node_id=1, photos=target_a),
            second=NodeSelection(node_id=2, photos=target_b),
        )
        holdings = {1: holdings_a, 2: holdings_b}
        plan = build_transfer_plan(result, holdings)

        draws = iter(drop_mask)

        def survives(photo):
            return not next(draws)

        outcome = execute_transfer_plan(
            plan, result, holdings,
            capacities={1: cap_a, 2: cap_b},
            byte_budget=budget,
            transfer_survives=survives,
        )
        if budget is not None:
            assert outcome.bytes_used <= budget
        assert outcome.bytes_used == sum(
            t.photo.size_bytes
            for t in outcome.completed_transfers + outcome.dropped_transfers
        )
        dropped_ids = {t.photo.photo_id for t in outcome.dropped_transfers}
        completed_ids = {t.photo.photo_id for t in outcome.completed_transfers}
        # A photo either arrived or was dropped, never both.
        assert not dropped_ids & completed_ids
        # A dropped photo never materializes at its receiver (the plan only
        # schedules photos the receiver lacks, so absence proves the drop).
        for transfer in outcome.dropped_transfers:
            receiver_ids = {
                p.photo_id for p in outcome.final_collections[transfer.receiver_id]
            }
            assert transfer.photo.photo_id not in receiver_ids
