"""Tests for trace transforms (bootstrap, subsampling, time scaling)."""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.traces.model import ContactRecord, ContactTrace
from repro.traces.synthetic import SyntheticTraceSpec, generate_trace
from repro.traces.transforms import bootstrap_trace, subsample_nodes, time_scale


def sample_trace():
    return generate_trace(
        SyntheticTraceSpec(num_nodes=12, duration_hours=96.0, num_communities=3,
                           intra_rate_per_hour=0.1),
        seed=1,
    )


class TestBootstrap:
    def test_preserves_contact_volume_roughly(self):
        trace = sample_trace()
        replicate = bootstrap_trace(trace, block_s=24 * 3600.0, seed=0)
        assert 0.4 * len(trace) < len(replicate) < 2.0 * len(trace)

    def test_same_node_population_subset(self):
        trace = sample_trace()
        replicate = bootstrap_trace(trace, block_s=24 * 3600.0, seed=0)
        assert replicate.node_ids() <= trace.node_ids()

    def test_deterministic(self):
        trace = sample_trace()
        a = bootstrap_trace(trace, seed=4)
        b = bootstrap_trace(trace, seed=4)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        trace = sample_trace()
        assert list(bootstrap_trace(trace, seed=1)) != list(bootstrap_trace(trace, seed=2))

    def test_span_preserved_up_to_block(self):
        trace = sample_trace()
        replicate = bootstrap_trace(trace, block_s=24 * 3600.0, seed=0)
        assert replicate.end_time <= trace.span + 24 * 3600.0 + trace.mean_contact_duration() * 10

    def test_empty_trace(self):
        assert len(bootstrap_trace(ContactTrace([]), seed=0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_trace(sample_trace(), block_s=0.0)


class TestSubsampleNodes:
    def test_fraction_respected(self):
        trace = sample_trace()
        half = subsample_nodes(trace, 0.5, seed=0)
        assert len(half.node_ids()) == pytest.approx(len(trace.node_ids()) / 2, abs=1)

    def test_always_keep_pinned(self):
        trace = sample_trace()
        pinned = sorted(trace.node_ids())[:2]
        sub = subsample_nodes(trace, 0.2, seed=0, always_keep=pinned)
        # Every contact between two pinned nodes must survive verbatim.
        expected = [c for c in trace if set(c.pair) <= set(pinned)]
        survived = [c for c in sub if set(c.pair) <= set(pinned)]
        assert survived == expected
        assert sub.node_ids() <= trace.node_ids()

    def test_full_fraction_is_identity(self):
        trace = sample_trace()
        assert list(subsample_nodes(trace, 1.0, seed=0)) == list(trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            subsample_nodes(sample_trace(), 0.0)


class TestTimeScale:
    def test_compression_densifies(self):
        trace = sample_trace()
        compressed = time_scale(trace, 0.5)
        assert compressed.span == pytest.approx(trace.span * 0.5, rel=0.01)
        assert len(compressed) == len(trace)
        # Durations unchanged by default.
        assert compressed.mean_contact_duration() == pytest.approx(
            trace.mean_contact_duration()
        )

    def test_duration_scaling_opt_in(self):
        trace = sample_trace()
        scaled = time_scale(trace, 2.0, scale_durations=True)
        assert scaled.mean_contact_duration() == pytest.approx(
            2.0 * trace.mean_contact_duration()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            time_scale(sample_trace(), 0.0)


class TestChurnAblation:
    def test_sweep_churn_shape(self):
        results = ablations.sweep_churn(
            availabilities=(1.0, 0.5), scale=0.08, num_runs=1
        )
        assert set(results) == {"availability=1.0", "availability=0.5"}
        full = results["availability=1.0"]
        churned = results["availability=0.5"]
        # Losing half the participation time cannot help.
        assert churned.point_coverage <= full.point_coverage + 0.05

    def test_sweep_churn_validation(self):
        with pytest.raises(ValueError):
            ablations.sweep_churn(availabilities=(0.0,), scale=0.08)

    def test_cli_churn(self, capsys):
        from repro.cli import main

        assert main(["ablation", "churn", "--scale", "0.08"]) == 0
        assert "availability=" in capsys.readouterr().out
