"""Tests for the weighted-PoI prioritization study and example smoke runs."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.weighted_study import run_weighted_study

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestWeightedStudy:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_weighted_study(scale=0.15, seed=0)

    def test_weights_prioritize_important_pois(self, outcome):
        """Section II-C: weighted PoIs are covered at least as well."""
        assert outcome.important_point_weighted >= outcome.important_point_unweighted
        assert (
            outcome.important_aspect_weighted_deg
            >= outcome.important_aspect_unweighted_deg - 1e-9
        )
        assert outcome.prioritization_gain() >= 0.0

    def test_scarcity_produces_strict_gain(self, outcome):
        """Under the default scarce uplink the gain is strictly positive."""
        assert outcome.prioritization_gain() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_weighted_study(important_fraction=0.0, scale=0.1)
        with pytest.raises(ValueError):
            run_weighted_study(weight=1.0, scale=0.1)


class TestExampleSmoke:
    """Every example script must at least run to completion."""

    @pytest.mark.parametrize(
        "script,args",
        [
            ("quickstart.py", []),
            ("weighted_targets.py", []),
            ("sensor_fusion_demo.py", []),
            ("delivery_forensics.py", []),
            ("contact_duration_study.py", ["--scale", "0.08"]),
            ("disaster_response.py", ["--scale", "0.15"]),
        ],
    )
    def test_example_runs(self, script, args):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / script), *args],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()
