"""Tests for the workload generators (Table I photo metadata, PoIs)."""

from __future__ import annotations

import math

import pytest

from repro.core.coverage_index import CoverageIndex
from repro.core.geometry import Point
from repro.workload.photos import PhotoGenerator, PhotoGeneratorSpec, generate_photo_schedule
from repro.workload.pois import clustered_pois, random_pois, ring_viewpoints


class TestPhotoGeneratorSpec:
    def test_table_i_defaults(self):
        spec = PhotoGeneratorSpec()
        assert spec.photo_size_bytes == 4 * 1024 * 1024
        assert spec.fov_range_deg == (30.0, 60.0)
        assert spec.range_scale_m == (50.0, 100.0)
        assert spec.region_width_m == 6300.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(region_width_m=0.0)
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(fov_range_deg=(60.0, 30.0))
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(range_scale_m=(0.0, 10.0))
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(photo_size_bytes=0)
        with pytest.raises(ValueError):
            PhotoGeneratorSpec(targeted_fraction=1.5)


class TestPhotoGenerator:
    def test_metadata_within_table_i_ranges(self):
        generator = PhotoGenerator(seed=0)
        for _ in range(300):
            photo = generator.next_photo()
            fov_deg = math.degrees(photo.metadata.field_of_view)
            assert 30.0 <= fov_deg <= 60.0
            # r = c * cot(fov/2) with c in [50, 100].
            implied_c = photo.metadata.coverage_range * math.tan(
                photo.metadata.field_of_view / 2.0
            )
            assert 50.0 - 1e-6 <= implied_c <= 100.0 + 1e-6
            assert 0.0 <= photo.metadata.orientation < 2 * math.pi
            assert 0.0 <= photo.location.x <= 6300.0
            assert 0.0 <= photo.location.y <= 6300.0
            assert photo.size_bytes == 4 * 1024 * 1024

    def test_deterministic_metadata_for_seed(self):
        a = PhotoGenerator(seed=5).next_photo()
        b = PhotoGenerator(seed=5).next_photo()
        assert a.metadata == b.metadata
        assert a.photo_id != b.photo_id  # ids stay globally unique

    def test_targeted_photos_cover_their_target(self):
        pois = random_pois(10, seed=1)
        generator = PhotoGenerator(
            PhotoGeneratorSpec(targeted_fraction=1.0), pois=pois, seed=2
        )
        index = CoverageIndex(pois)
        hits = sum(1 for _ in range(100) if index.covers_anything(generator.next_photo()))
        assert hits >= 95  # aimed photos nearly always cover a PoI

    def test_targeted_requires_pois(self):
        with pytest.raises(ValueError):
            PhotoGenerator(PhotoGeneratorSpec(targeted_fraction=0.5), pois=None)

    def test_batch(self):
        photos = PhotoGenerator(seed=0).batch(5, taken_at=42.0)
        assert len(photos) == 5
        assert all(p.taken_at == 42.0 for p in photos)

    def test_owner_and_time_stamped(self):
        photo = PhotoGenerator(seed=0).next_photo(taken_at=10.0, owner_id=3)
        assert photo.taken_at == 10.0
        assert photo.owner_id == 3


class TestPhotoSchedule:
    def test_rate_roughly_respected(self):
        generator = PhotoGenerator(seed=0)
        arrivals = generate_photo_schedule(
            generator, [1, 2, 3], photos_per_hour=100.0, duration_s=100 * 3600.0, seed=1
        )
        assert 0.9 * 10000 < len(arrivals) < 1.1 * 10000

    def test_owners_drawn_from_participants(self):
        generator = PhotoGenerator(seed=0)
        arrivals = generate_photo_schedule(
            generator, [7, 9], photos_per_hour=50.0, duration_s=10 * 3600.0, seed=2
        )
        assert {a.owner_id for a in arrivals} <= {7, 9}
        assert all(a.photo.owner_id == a.owner_id for a in arrivals)

    def test_times_sorted_within_horizon(self):
        generator = PhotoGenerator(seed=0)
        arrivals = generate_photo_schedule(
            generator, [1], photos_per_hour=50.0, duration_s=3600.0, seed=3
        )
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 < t < 3600.0 for t in times)

    def test_zero_rate_empty(self):
        generator = PhotoGenerator(seed=0)
        assert generate_photo_schedule(generator, [1], 0.0, 3600.0) == []

    def test_validation(self):
        generator = PhotoGenerator(seed=0)
        with pytest.raises(ValueError):
            generate_photo_schedule(generator, [], 10.0, 3600.0)
        with pytest.raises(ValueError):
            generate_photo_schedule(generator, [1], -1.0, 3600.0)

    def test_deterministic(self):
        g1 = PhotoGenerator(seed=0)
        g2 = PhotoGenerator(seed=0)
        a = generate_photo_schedule(g1, [1, 2], 20.0, 3600.0, seed=5)
        b = generate_photo_schedule(g2, [1, 2], 20.0, 3600.0, seed=5)
        assert [(x.time, x.owner_id) for x in a] == [(y.time, y.owner_id) for y in b]


class TestPoIGenerators:
    def test_random_pois_in_region(self):
        pois = random_pois(50, region_width_m=100.0, region_height_m=200.0, seed=0)
        assert len(pois) == 50
        for poi in pois:
            assert 0.0 <= poi.location.x <= 100.0
            assert 0.0 <= poi.location.y <= 200.0

    def test_random_pois_with_weights(self):
        pois = random_pois(3, seed=0, weights=[1.0, 2.0, 3.0])
        assert [p.weight for p in pois] == [1.0, 2.0, 3.0]

    def test_random_pois_weight_length_checked(self):
        with pytest.raises(ValueError):
            random_pois(3, weights=[1.0])

    def test_random_pois_deterministic(self):
        a = random_pois(10, seed=4)
        b = random_pois(10, seed=4)
        assert a.locations() == b.locations()

    def test_clustered_pois_count(self):
        pois = clustered_pois(3, 5, seed=0)
        assert len(pois) == 15

    def test_clustered_pois_clamped_to_region(self):
        pois = clustered_pois(2, 50, region_width_m=100.0, region_height_m=100.0,
                              cluster_radius_m=40.0, seed=1)
        for poi in pois:
            assert 0.0 <= poi.location.x <= 100.0
            assert 0.0 <= poi.location.y <= 100.0

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_pois(0, 5)

    def test_ring_viewpoints_on_ring(self):
        center = Point(10.0, 20.0)
        points = ring_viewpoints(center, 8, radius_m=50.0)
        assert len(points) == 8
        for point in points:
            assert point.distance_to(center) == pytest.approx(50.0)

    def test_ring_viewpoints_jitter_bounded(self):
        center = Point(0.0, 0.0)
        points = ring_viewpoints(center, 16, radius_m=50.0, jitter_m=10.0, seed=2)
        for point in points:
            assert 40.0 <= point.distance_to(center) <= 60.0

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_viewpoints(Point(0, 0), 0, 10.0)
        with pytest.raises(ValueError):
            ring_viewpoints(Point(0, 0), 4, 0.0)
